package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// The compact binary trace format — the on-disk representation of the
// out-of-core pipeline. Text traces carry ~4–8 bytes per access and must
// be tokenized; the binary format carries ~1–2 bytes per access (loops
// revisit nearby variables, so the zigzag var deltas are tiny) and
// decodes with two branch-free varint reads, which is what makes
// corpus-scale 10⁸–10⁹-access traces practical to scan repeatedly.
//
// Layout (all integers little-endian; "uvarint" is the unsigned varint
// of encoding/binary):
//
//	File     := "RTBF" | uint16 version (= 1) | uvarint seqCount | Seq*
//	Seq      := uvarint numVars | uvarint accessCount | uvarint nameCount
//	            | nameCount × (uvarint len | len bytes)     names, 0 or numVars
//	            | accessCount × uvarint token               the access stream
//	            | uint64 fingerprint                        trailer
//	token    := zigzag(var − prevVar) << 1 | writeBit       prevVar starts at 0
//
// The trailer fingerprint is the FNV-1a hash of Sequence.Fingerprint
// computed over the declared universe (numVars, the names, the ordered
// access stream); the streaming scanner accumulates it while decoding
// and verifies it after the final access, so truncation and corruption
// of the payload are detected without ever materializing the trace.
// For a dense sequence (every variable below numVars accessed, the
// invariant of parsed text traces) it equals Sequence.Fingerprint()
// exactly. It trails rather than leads so that writers stream: a
// BinWriter never buffers or seeks, it only needs the counts declared
// up front.
//
// Format evolution bumps binVersion; readers reject versions they do
// not understand rather than guessing.

// Binary-format constants and sanity caps. The caps bound what a
// corrupt or adversarial header can make a reader allocate before the
// payload proves itself: eager reads grow incrementally and streaming
// reads are O(numVars) regardless, but a parsed name or universe still
// allocates, so declared sizes beyond any plausible trace are rejected
// up front.
const (
	binMagic   = "RTBF"
	binVersion = 1

	maxBinVars    = 1 << 31 // variable universe cap
	maxBinNameLen = 1 << 20 // single name cap (bytes)
	maxBinSeqs    = 1 << 24 // sequences per file cap
)

// zigzag maps signed deltas to unsigned varint-friendly codes
// (0, -1, 1, -2, 2, ... → 0, 1, 2, 3, 4, ...).
func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// binHash accumulates the trailer fingerprint incrementally, mirroring
// Sequence.Fingerprint exactly (same FNV-1a constants, same mixing
// order: universe size, name count, names, accesses).
type binHash struct{ h uint64 }

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func newBinHash() binHash { return binHash{h: fnvOffset64} }

func (b *binHash) mix(v uint64) {
	h := b.h
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	b.h = h
}

func (b *binHash) mixName(n string) {
	h := b.h
	for i := 0; i < len(n); i++ {
		h ^= uint64(n[i])
		h *= fnvPrime64
	}
	h ^= 0xff // name separator
	h *= fnvPrime64
	b.h = h
}

func (b *binHash) mixAccess(a Access) {
	v := uint64(a.Var) << 1
	if a.Write {
		v |= 1
	}
	b.mix(v)
}

// header seeds the hash with the universe part of the fingerprint.
func (b *binHash) header(numVars int, names []string) {
	b.mix(uint64(numVars))
	b.mix(uint64(len(names)))
	for _, n := range names {
		b.mixName(n)
	}
}

// A BinWriter encodes sequences into the binary format, streaming: the
// caller declares each sequence's universe and access count up front
// (synthetic generators and converters know both), then appends
// accesses one at a time. Nothing is buffered beyond the bufio layer
// and nothing is ever seeked, so a BinWriter writes to pipes and
// sockets as well as files, in O(numVars) memory.
type BinWriter struct {
	w         *bufio.Writer
	declared  int   // sequences declared in the file header
	begun     int   // sequences begun
	remaining int64 // accesses still owed in the open sequence
	open      bool
	numVars   int
	prevVar   int64
	hash      binHash
	scratch   [binary.MaxVarintLen64]byte
	err       error
}

// NewBinWriter writes the file header for a file of seqCount sequences
// and returns the writer. Every declared sequence must be written
// (BeginSequence/Append/EndSequence) before Close.
func NewBinWriter(w io.Writer, seqCount int) (*BinWriter, error) {
	if seqCount < 0 || seqCount > maxBinSeqs {
		return nil, fmt.Errorf("trace: binary writer: invalid sequence count %d", seqCount)
	}
	bw := &BinWriter{w: bufio.NewWriterSize(w, 1<<16), declared: seqCount}
	if _, err := bw.w.WriteString(binMagic); err != nil {
		return nil, err
	}
	var v [2]byte
	binary.LittleEndian.PutUint16(v[:], binVersion)
	if _, err := bw.w.Write(v[:]); err != nil {
		return nil, err
	}
	bw.putUvarint(uint64(seqCount))
	return bw, bw.err
}

func (bw *BinWriter) putUvarint(v uint64) {
	if bw.err != nil {
		return
	}
	n := binary.PutUvarint(bw.scratch[:], v)
	_, bw.err = bw.w.Write(bw.scratch[:n])
}

// BeginSequence opens the next sequence: a universe of numVars
// variables, exactly accessCount accesses to follow, and optional names
// (nil, or exactly numVars labels).
func (bw *BinWriter) BeginSequence(numVars int, accessCount int64, names []string) error {
	if bw.err != nil {
		return bw.err
	}
	switch {
	case bw.open:
		return fmt.Errorf("trace: binary writer: BeginSequence with sequence %d still open", bw.begun-1)
	case bw.begun >= bw.declared:
		return fmt.Errorf("trace: binary writer: file declared %d sequences", bw.declared)
	case numVars < 0 || numVars > maxBinVars:
		return fmt.Errorf("trace: binary writer: invalid universe size %d", numVars)
	case accessCount < 0:
		return fmt.Errorf("trace: binary writer: invalid access count %d", accessCount)
	case names != nil && len(names) != numVars:
		return fmt.Errorf("trace: binary writer: %d names for %d variables", len(names), numVars)
	}
	bw.putUvarint(uint64(numVars))
	bw.putUvarint(uint64(accessCount))
	bw.putUvarint(uint64(len(names)))
	for _, n := range names {
		if len(n) > maxBinNameLen {
			return fmt.Errorf("trace: binary writer: name of %d bytes exceeds cap", len(n))
		}
		bw.putUvarint(uint64(len(n)))
		if bw.err == nil {
			_, bw.err = bw.w.WriteString(n)
		}
	}
	bw.open = true
	bw.begun++
	bw.remaining = accessCount
	bw.numVars = numVars
	bw.prevVar = 0
	bw.hash = newBinHash()
	bw.hash.header(numVars, names)
	return bw.err
}

// Append encodes one access of the open sequence.
func (bw *BinWriter) Append(a Access) error {
	if bw.err != nil {
		return bw.err
	}
	if !bw.open {
		return fmt.Errorf("trace: binary writer: Append outside a sequence")
	}
	if bw.remaining <= 0 {
		return fmt.Errorf("trace: binary writer: sequence declared fewer accesses")
	}
	if a.Var < 0 || a.Var >= bw.numVars {
		return fmt.Errorf("trace: binary writer: access to variable %d outside universe of %d", a.Var, bw.numVars)
	}
	tok := zigzag(int64(a.Var)-bw.prevVar) << 1
	if a.Write {
		tok |= 1
	}
	bw.putUvarint(tok)
	bw.prevVar = int64(a.Var)
	bw.hash.mixAccess(a)
	bw.remaining--
	return bw.err
}

// EndSequence writes the fingerprint trailer and closes the open
// sequence. It fails if fewer accesses were appended than declared.
func (bw *BinWriter) EndSequence() error {
	if bw.err != nil {
		return bw.err
	}
	if !bw.open {
		return fmt.Errorf("trace: binary writer: EndSequence outside a sequence")
	}
	if bw.remaining != 0 {
		return fmt.Errorf("trace: binary writer: sequence short by %d accesses", bw.remaining)
	}
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], bw.hash.h)
	_, bw.err = bw.w.Write(t[:])
	bw.open = false
	return bw.err
}

// Close flushes the writer. It fails if fewer sequences were written
// than the file header declared.
func (bw *BinWriter) Close() error {
	if bw.err != nil {
		return bw.err
	}
	if bw.open {
		return fmt.Errorf("trace: binary writer: Close with a sequence open")
	}
	if bw.begun != bw.declared {
		return fmt.Errorf("trace: binary writer: wrote %d of %d declared sequences", bw.begun, bw.declared)
	}
	return bw.w.Flush()
}

// WriteBinary encodes a benchmark into the binary format.
func WriteBinary(w io.Writer, b *Benchmark) error {
	bw, err := NewBinWriter(w, len(b.Sequences))
	if err != nil {
		return err
	}
	for _, s := range b.Sequences {
		if err := bw.BeginSequence(s.NumVars(), int64(s.Len()), s.Names); err != nil {
			return err
		}
		for _, a := range s.Accesses {
			if err := bw.Append(a); err != nil {
				return err
			}
		}
		if err := bw.EndSequence(); err != nil {
			return err
		}
	}
	return bw.Close()
}

// byteScanner is the reader the decoder runs on: bufio.Reader for
// chunked file/stream backends, bytes.Reader for the mmap backend.
type byteScanner interface {
	io.ByteReader
	io.Reader
}

// A BinReader decodes a binary trace file sequence by sequence. Obtain
// scanners with ScanSequence; each must be drained (or the next
// ScanSequence call drains it) before the following sequence starts.
type BinReader struct {
	r        byteScanner
	seqCount int
	scanned  int
	cur      *SeqScanner
}

// NewBinReader validates the file header and returns a reader. The
// decode is fully streaming: memory is proportional to the largest
// variable universe (for names), never to the access count.
func NewBinReader(r io.Reader) (*BinReader, error) {
	bs, ok := r.(byteScanner)
	if !ok {
		bs = bufio.NewReaderSize(r, 1<<16)
	}
	var hdr [6]byte
	if _, err := io.ReadFull(bs, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: binary header: %w", err)
	}
	if string(hdr[:4]) != binMagic {
		return nil, fmt.Errorf("trace: not a binary trace (bad magic %q)", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != binVersion {
		return nil, fmt.Errorf("trace: unsupported binary trace version %d (reader speaks %d)", v, binVersion)
	}
	n, err := binary.ReadUvarint(bs)
	if err != nil {
		return nil, fmt.Errorf("trace: binary header: %w", err)
	}
	if n > maxBinSeqs {
		return nil, fmt.Errorf("trace: binary header declares %d sequences (cap %d)", n, maxBinSeqs)
	}
	return &BinReader{r: bs, seqCount: int(n)}, nil
}

// SeqCount returns the number of sequences the file header declares.
func (br *BinReader) SeqCount() int { return br.seqCount }

// ScanSequence returns the streaming scanner for the next sequence,
// draining any previously returned scanner first. After the last
// sequence it returns io.EOF.
func (br *BinReader) ScanSequence() (*SeqScanner, error) {
	if br.cur != nil {
		if err := br.cur.drain(); err != nil {
			return nil, err
		}
		br.cur = nil
	}
	if br.scanned >= br.seqCount {
		return nil, io.EOF
	}
	sc, err := newSeqScanner(br.r)
	if err != nil {
		return nil, fmt.Errorf("trace: binary sequence %d: %w", br.scanned, err)
	}
	br.scanned++
	br.cur = sc
	return sc, nil
}

// A SeqScanner streams one sequence's accesses out of the binary
// payload, implementing AccessReader. NumVars, Len and Names come from
// the sequence header; Next yields the accesses in order and returns
// io.EOF after verifying the fingerprint trailer, so a stream that
// reached io.EOF is guaranteed uncorrupted and untruncated.
type SeqScanner struct {
	r         byteScanner
	numVars   int
	accesses  int64
	names     []string
	remaining int64
	prevVar   int64
	hash      binHash
	done      bool
	err       error
}

func newSeqScanner(r byteScanner) (*SeqScanner, error) {
	nv, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("header: %w", noEOF(err))
	}
	if nv > maxBinVars {
		return nil, fmt.Errorf("header declares %d variables (cap %d)", nv, maxBinVars)
	}
	ac, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("header: %w", noEOF(err))
	}
	if ac > 1<<62 {
		return nil, fmt.Errorf("header declares implausible access count %d", ac)
	}
	nc, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("header: %w", noEOF(err))
	}
	if nc != 0 && nc != nv {
		return nil, fmt.Errorf("header declares %d names for %d variables", nc, nv)
	}
	var names []string
	if nc > 0 {
		names = make([]string, 0, min64(int64(nc), 1<<16))
		buf := make([]byte, 0, 64)
		for i := uint64(0); i < nc; i++ {
			l, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, fmt.Errorf("name %d: %w", i, noEOF(err))
			}
			if l > maxBinNameLen {
				return nil, fmt.Errorf("name %d of %d bytes exceeds cap", i, l)
			}
			if uint64(cap(buf)) < l {
				buf = make([]byte, l)
			}
			buf = buf[:l]
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, fmt.Errorf("name %d: %w", i, noEOF(err))
			}
			names = append(names, string(buf))
		}
	}
	sc := &SeqScanner{
		r: r, numVars: int(nv), accesses: int64(ac), names: names,
		remaining: int64(ac), hash: newBinHash(),
	}
	sc.hash.header(sc.numVars, names)
	return sc, nil
}

// min64 bounds an eager preallocation by a sane cap.
func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// noEOF converts a clean EOF into ErrUnexpectedEOF: inside a declared
// structure, running out of bytes is truncation, not a clean end.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// NumVars returns the declared variable universe of the sequence.
func (sc *SeqScanner) NumVars() int { return sc.numVars }

// Len returns the declared access count.
func (sc *SeqScanner) Len() int64 { return sc.accesses }

// Names returns the declared variable names, or nil for an unnamed
// sequence. The slice is owned by the scanner; callers must not mutate.
func (sc *SeqScanner) Names() []string { return sc.names }

// Name returns a printable label for variable v.
func (sc *SeqScanner) Name(v int) string {
	if v >= 0 && v < len(sc.names) {
		return sc.names[v]
	}
	return fmt.Sprintf("v%d", v)
}

// Next implements AccessReader: it decodes the next access, or returns
// io.EOF after the declared count once the fingerprint trailer
// verifies. Errors are sticky.
//
//rtm:hotpath
func (sc *SeqScanner) Next() (Access, error) {
	if sc.err != nil {
		return Access{}, sc.err
	}
	if sc.remaining <= 0 {
		return Access{}, sc.finish()
	}
	tok, err := binary.ReadUvarint(sc.r)
	if err != nil {
		sc.err = fmt.Errorf("trace: binary payload: %w", noEOF(err))
		return Access{}, sc.err
	}
	v := sc.prevVar + unzigzag(tok>>1)
	if v < 0 || v >= int64(sc.numVars) {
		sc.err = badVariable(v, sc.numVars)
		return Access{}, sc.err
	}
	a := Access{Var: int(v), Write: tok&1 != 0}
	sc.prevVar = v
	sc.hash.mixAccess(a)
	sc.remaining--
	return a, nil
}

// badVariable builds the out-of-universe decode error — kept out of
// the annotated hot scan so the boxing lives on the cold path.
func badVariable(v int64, numVars int) error {
	return fmt.Errorf("trace: binary payload: access to variable %d outside universe of %d", v, numVars)
}

// finish reads and verifies the fingerprint trailer exactly once.
func (sc *SeqScanner) finish() error {
	if sc.done {
		return io.EOF
	}
	var t [8]byte
	if _, err := io.ReadFull(sc.r, t[:]); err != nil {
		sc.err = fmt.Errorf("trace: binary trailer: %w", noEOF(err))
		return sc.err
	}
	if got := binary.LittleEndian.Uint64(t[:]); got != sc.hash.h {
		sc.err = fmt.Errorf("trace: binary trailer: fingerprint mismatch (stream %#x, trailer %#x)", sc.hash.h, got)
		return sc.err
	}
	sc.done = true
	return io.EOF
}

// Fingerprint returns the verified trailer fingerprint; valid only
// after Next returned io.EOF.
func (sc *SeqScanner) Fingerprint() uint64 { return sc.hash.h }

// drain decodes the scanner to completion (verifying the trailer) so
// the underlying reader is positioned at the next sequence.
func (sc *SeqScanner) drain() error {
	for {
		if _, err := sc.Next(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

// ReadBinary eagerly decodes a whole binary trace file into a
// Benchmark — the in-RAM path, for traces that fit (conversion back to
// text, the non-streaming CLI modes, tests). Accesses are appended as
// they decode, so a corrupt header cannot force an oversized up-front
// allocation.
func ReadBinary(name string, r io.Reader) (*Benchmark, error) {
	br, err := NewBinReader(r)
	if err != nil {
		return nil, err
	}
	b := &Benchmark{Name: name}
	for {
		sc, err := br.ScanSequence()
		if err == io.EOF {
			return b, nil
		}
		if err != nil {
			return nil, err
		}
		s := &Sequence{Names: sc.Names()}
		if n := min64(sc.Len(), 1<<20); n > 0 {
			s.Accesses = make([]Access, 0, n)
		}
		for {
			a, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			s.Accesses = append(s.Accesses, a)
		}
		s.refresh()
		b.Sequences = append(b.Sequences, s)
	}
}

// A BinFile is an opened on-disk binary trace: the mmap backend where
// the platform provides it (the file's pages then stream through the
// page cache and never count against the Go heap), a chunked buffered
// reader everywhere else. Close releases the mapping or file handle.
type BinFile struct {
	f    *os.File
	data []byte // non-nil iff mmapped
	br   *BinReader
}

// OpenBin opens a binary trace file for scanning.
func OpenBin(path string) (*BinFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	bf := &BinFile{f: f}
	if data, ok := mmapFile(f); ok {
		bf.data = data
		bf.br, err = NewBinReader(newByteSliceScanner(data))
	} else {
		bf.br, err = NewBinReader(bufio.NewReaderSize(f, 1<<20))
	}
	if err != nil {
		bf.Close()
		return nil, err
	}
	return bf, nil
}

// Reader returns the file's BinReader.
func (bf *BinFile) Reader() *BinReader { return bf.br }

// Mapped reports whether the file is memory-mapped (diagnostics only;
// the scanning API is identical either way).
func (bf *BinFile) Mapped() bool { return bf.data != nil }

// Close unmaps and closes the file.
func (bf *BinFile) Close() error {
	var err error
	if bf.data != nil {
		err = munmapFile(bf.data)
		bf.data = nil
	}
	if bf.f != nil {
		if cerr := bf.f.Close(); err == nil {
			err = cerr
		}
		bf.f = nil
	}
	return err
}

// byteSliceScanner is a minimal zero-copy byteScanner over an mmapped
// region (bytes.Reader would also do, but keeping it local avoids the
// interface growing methods the decoder must not use).
type byteSliceScanner struct {
	data []byte
	pos  int
}

func newByteSliceScanner(data []byte) *byteSliceScanner { return &byteSliceScanner{data: data} }

func (b *byteSliceScanner) ReadByte() (byte, error) {
	if b.pos >= len(b.data) {
		return 0, io.EOF
	}
	c := b.data[b.pos]
	b.pos++
	return c, nil
}

func (b *byteSliceScanner) Read(p []byte) (int, error) {
	if b.pos >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.pos:])
	b.pos += n
	return n, nil
}
