package racetrack

import (
	"container/list"
	"sync"

	"repro/internal/placement"
	"repro/internal/trace"
)

// kernelCache is the Lab's bounded, content-addressed cost-kernel store:
// kernels are keyed by the sequence's content fingerprint, so any
// content-equal sequence — regardless of pointer identity — reuses the
// summarization work. Entries are verified with ContentEqual on every
// hit (a fingerprint collision therefore costs a rebuild, never a wrong
// cost) and evicted least-recently-used beyond the capacity.
type kernelCache struct {
	mu      sync.Mutex
	cap     int
	entries map[uint64]*list.Element
	lru     *list.List // of *kernelEntry, most recent first

	// hits/misses instrument the cache for tests and benchmarks.
	hits, misses int64
}

type kernelEntry struct {
	fp   uint64
	kern *placement.CostKernel
}

// newKernelCache returns a cache bounded to capacity kernels; capacity
// <= 0 yields nil (cache disabled).
func newKernelCache(capacity int) *kernelCache {
	if capacity <= 0 {
		return nil
	}
	return &kernelCache{cap: capacity, entries: make(map[uint64]*list.Element), lru: list.New()}
}

// kernel returns a cost kernel bound to exactly s, from the cache when a
// content-equal sequence was summarized before, building (and caching)
// it otherwise. The returned kernel satisfies the engine.Hooks.Kernel
// contract: cache hits under a different sequence pointer are rebound
// before they are handed out. Safe for concurrent use; concurrent misses
// on the same content may build twice, with the later build winning the
// cache slot (both results are valid).
func (c *kernelCache) kernel(s *trace.Sequence) *placement.CostKernel {
	fp := s.Fingerprint()
	c.mu.Lock()
	var cand *placement.CostKernel
	if el, ok := c.entries[fp]; ok {
		cand = el.Value.(*kernelEntry).kern
	}
	c.mu.Unlock()

	if cand != nil {
		// Verify content (and rebind) outside the lock: the O(accesses)
		// comparison must not serialize concurrent workers on the hit
		// path. Kernels are immutable, so the candidate cannot change
		// under us; at worst the entry was evicted meanwhile, which only
		// skips the LRU bump.
		if k := cand.Rebind(s); k != nil {
			c.mu.Lock()
			if el, ok := c.entries[fp]; ok {
				c.lru.MoveToFront(el)
			}
			c.hits++
			c.mu.Unlock()
			return k
		}
		// Fingerprint collision: different content behind the same key.
		// Treat as a miss; the build below replaces the entry.
	}

	k := placement.NewCostKernel(s) // build outside the lock
	c.mu.Lock()
	c.misses++
	if el, ok := c.entries[fp]; ok {
		c.lru.Remove(el)
	}
	c.entries[fp] = c.lru.PushFront(&kernelEntry{fp: fp, kern: k})
	for c.lru.Len() > c.cap {
		old := c.lru.Back()
		c.lru.Remove(old)
		delete(c.entries, old.Value.(*kernelEntry).fp)
	}
	c.mu.Unlock()
	return k
}

// stats reports the hit/miss counters.
func (c *kernelCache) stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
