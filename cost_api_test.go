package racetrack

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"
)

// Public-API tests of the pluggable cost model: objective selection via
// PlaceOptions.Objective and WithCostModel, result pricing, and the
// bit-identity of placements across objectives (the monotone reduction
// of DESIGN.md §15).

func costSeq(t *testing.T) *Sequence {
	t.Helper()
	s, err := ParseSequence("a b a c! b a d c a b! d d a c a b")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPlaceObjectivePricesResult pins the pricing path end to end: an
// energy-objective Place returns the same placement and shift count as
// the default, plus a Cost priced from the Table I row of the call's
// DBC count, with per-DBC costs that sum to the total.
func TestPlaceObjectivePricesResult(t *testing.T) {
	lab, err := New(WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	s := costSeq(t)
	ctx := context.Background()
	plain, err := lab.Place(ctx, s, PlaceOptions{Strategy: DMAOFU})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cost != nil || plain.PerDBCCost != nil {
		t.Fatalf("raw shift default should skip pricing, got %+v", plain.Cost)
	}
	priced, err := lab.Place(ctx, s, PlaceOptions{Strategy: DMAOFU, Objective: "energy"})
	if err != nil {
		t.Fatal(err)
	}
	if priced.Shifts != plain.Shifts || !reflect.DeepEqual(priced.Placement, plain.Placement) {
		t.Fatalf("objective changed the placement: %d vs %d shifts", priced.Shifts, plain.Shifts)
	}
	if priced.Cost == nil || priced.Cost.Objective != ObjectiveEnergy {
		t.Fatalf("missing priced cost: %+v", priced.Cost)
	}
	params, err := EnergyParams(4) // the Lab default DBC count
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewCostModel(ObjectiveEnergy, params, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := m.Price(Tally{Shifts: priced.Shifts, Reads: priced.Cost.Reads, Writes: priced.Cost.Writes}); *priced.Cost != want {
		t.Errorf("cost %+v, want %+v", *priced.Cost, want)
	}
	if len(priced.PerDBCCost) != len(priced.PerDBC) {
		t.Fatalf("%d per-DBC costs for %d DBCs", len(priced.PerDBCCost), len(priced.PerDBC))
	}
	var sum Cost
	sum.Objective = ObjectiveEnergy
	for i, c := range priced.PerDBCCost {
		if c.Shifts != priced.PerDBC[i] {
			t.Errorf("DBC %d: cost shifts %d, attribution %d", i, c.Shifts, priced.PerDBC[i])
		}
		sum.Add(c)
	}
	if sum.Shifts != priced.Cost.Shifts || sum.Reads != priced.Cost.Reads || sum.Writes != priced.Cost.Writes {
		t.Errorf("per-DBC tallies sum to %+v, total %+v", sum, *priced.Cost)
	}
	if math.Abs(sum.Scalar-priced.Cost.Scalar) > 1e-6 {
		t.Errorf("per-DBC scalars sum to %v, total %v", sum.Scalar, priced.Cost.Scalar)
	}
}

// TestPlaceObjectiveFaulty exercises the fault-aware objective through
// the public API: the expected-correction overhead inflates the shift
// term, and the result still carries the nominal shift count.
func TestPlaceObjectiveFaulty(t *testing.T) {
	lab, err := New(WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := lab.Place(context.Background(), costSeq(t), PlaceOptions{Strategy: DMAOFU, Objective: "faulty:0.5"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost == nil || res.Cost.Objective != ObjectiveFaulty {
		t.Fatalf("cost %+v", res.Cost)
	}
	// 1/(1-0.5) = 2x physical shifts: FaultShifts equals the nominal count.
	if math.Abs(res.Cost.FaultShifts-float64(res.Shifts)) > 1e-9 {
		t.Errorf("fault shifts %v for %d nominal", res.Cost.FaultShifts, res.Shifts)
	}
}

// TestPlaceObjectiveErrors pins the error paths: unknown objectives,
// bad fault rates, and derived objectives on non-Table-I DBC counts.
func TestPlaceObjectiveErrors(t *testing.T) {
	lab, err := New(WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	s := costSeq(t)
	ctx := context.Background()
	for _, tc := range []struct{ objective, wantErr string }{
		{"watts", "unknown objective"},
		{"faulty:1", "fault rate"},
		{"faulty:", "bad fault rate"},
	} {
		if _, err := lab.Place(ctx, s, PlaceOptions{Objective: tc.objective}); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("objective %q: error %v, want %q", tc.objective, err, tc.wantErr)
		}
	}
	// 3 DBCs has no Table I row: derived objectives must fail loudly,
	// the shift objective must keep working.
	if _, err := lab.Place(ctx, s, PlaceOptions{DBCs: 3, Objective: "energy"}); err == nil {
		t.Error("energy objective at 3 DBCs should fail (no Table I row)")
	}
	if _, err := lab.Place(ctx, s, PlaceOptions{DBCs: 3, Objective: "shifts"}); err != nil {
		t.Errorf("shifts objective at 3 DBCs: %v", err)
	}
}

// TestWithCostModelPricesEverywhere pins the Lab-wide model: Place,
// PlacePortfolio, PlaceBenchmark and PlaceStream all price under it,
// and an explicit PlaceOptions.Objective overrides it per call.
func TestWithCostModelPricesEverywhere(t *testing.T) {
	params, err := EnergyParams(2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewCostModel(ObjectiveRuntime, params, 0)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := New(WithWorkers(1), WithDevice(2), WithCostModel(m))
	if err != nil {
		t.Fatal(err)
	}
	s := costSeq(t)
	ctx := context.Background()

	res, err := lab.Place(ctx, s, PlaceOptions{Strategy: DMAOFU})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost == nil || res.Cost.Objective != ObjectiveRuntime {
		t.Fatalf("Place did not price under the Lab model: %+v", res.Cost)
	}
	over, err := lab.Place(ctx, s, PlaceOptions{Strategy: DMAOFU, Objective: "energy"})
	if err != nil {
		t.Fatal(err)
	}
	if over.Cost == nil || over.Cost.Objective != ObjectiveEnergy {
		t.Fatalf("per-call objective did not override the Lab model: %+v", over.Cost)
	}

	pf, err := lab.PlacePortfolio(ctx, s, PlaceOptions{Portfolio: []Strategy{AFDOFU, DMAOFU}})
	if err != nil {
		t.Fatal(err)
	}
	if pf.Cost == nil || pf.Cost.Objective != ObjectiveRuntime || pf.Cost.Shifts != pf.Shifts {
		t.Fatalf("portfolio cost %+v for %d shifts", pf.Cost, pf.Shifts)
	}

	b := &Benchmark{Name: "cost", Sequences: []*Sequence{s, s}}
	br, err := lab.PlaceBenchmark(ctx, b, PlaceOptions{Strategy: DMAOFU})
	if err != nil {
		t.Fatal(err)
	}
	if br.TotalCost == nil || br.TotalCost.Shifts != br.TotalShifts {
		t.Fatalf("benchmark total cost %+v for %d shifts", br.TotalCost, br.TotalShifts)
	}
	var want Cost
	want.Objective = ObjectiveRuntime
	for _, r := range br.Results {
		if r.Cost == nil {
			t.Fatal("unpriced benchmark result")
		}
		want.Add(*r.Cost)
	}
	if *br.TotalCost != want {
		t.Errorf("total cost %+v, want summed %+v", *br.TotalCost, want)
	}

	sr, err := lab.PlaceStream(ctx, s.NumVars(), NewSequenceReader(s), PlaceOptions{Strategy: DMAOFU, Window: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Cost == nil || sr.Cost.Objective != ObjectiveRuntime || sr.Cost.Shifts != sr.Shifts {
		t.Fatalf("stream cost %+v for %d shifts", sr.Cost, sr.Shifts)
	}
}

// TestObjectivePlacementBitIdentity sweeps the search strategies across
// every objective and pins that placements and shift counts never move:
// the objective prices, the shift count steers.
func TestObjectivePlacementBitIdentity(t *testing.T) {
	lab, err := New(WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	s := costSeq(t)
	ctx := context.Background()
	ga := GAConfig{Mu: 8, Lambda: 8, Generations: 12, TournamentK: 2, MutationRate: 0.5,
		MoveWeight: 10, TransposeWeight: 10, PermuteWeight: 3, Seed: 7}
	for _, strat := range []Strategy{GA, RW, DMA2Opt} {
		base, err := lab.Place(ctx, s, PlaceOptions{Strategy: strat, GA: ga})
		if err != nil {
			t.Fatal(err)
		}
		for _, objective := range []string{"energy", "runtime", "faulty:0.25"} {
			got, err := lab.Place(ctx, s, PlaceOptions{Strategy: strat, GA: ga, Objective: objective})
			if err != nil {
				t.Fatal(err)
			}
			if got.Shifts != base.Shifts || !reflect.DeepEqual(got.Placement, base.Placement) {
				t.Errorf("%s under %s: %d shifts, default %d — objectives must not steer the search",
					strat, objective, got.Shifts, base.Shifts)
			}
		}
	}
}
