// Package profiling is the shared pprof plumbing of the CLI tools: it
// lets perf work on the experiment pipeline ship pprof evidence instead
// of wall-clock anecdotes.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling and/or arms a heap-profile dump, returning
// a stop function to run when the command finishes (idempotence is the
// caller's concern — call it exactly once on every exit path). Empty
// paths disable the respective profile.
func Start(cpuPath, memPath string) (func(), error) {
	stop := func() {}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if memPath == "" {
		return stop, nil
	}
	cpuStop := stop
	return func() {
		cpuStop()
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			return
		}
		defer f.Close()
		runtime.GC() // materialize final live-set statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
	}, nil
}
