// Command rtmbench regenerates the paper's tables and figures on the
// synthetic OffsetStone suite.
//
// Usage:
//
//	rtmbench -exp table1
//	rtmbench -exp fig4               # quick scale by default
//	rtmbench -exp fig4 -full         # the paper's full GA/RW budgets (slow)
//	rtmbench -exp all -out results.txt
//
// Experiments: table1, fig4, fig5, fig6, latency, headline, longga,
// ports (extension: shifts vs access-port count), convergence (seeded vs
// cold GA trajectories), tensor (LCTES'19-style contractions), all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/eval"
	"repro/internal/profiling"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: table1, fig4, fig5, fig6, latency, headline, longga, ports, convergence, tensor, all")
		full       = flag.Bool("full", false, "use the paper's full GA/RW budgets (slow: hours)")
		out        = flag.String("out", "", "write results to this file as well as stdout")
		maxSeq     = flag.Int("max-sequences", 0, "override sequences per benchmark (0 = config default)")
		maxLen     = flag.Int("max-length", 0, "override max sequence length (0 = config default)")
		gaGens     = flag.Int("ga-generations", 0, "override GA generations (0 = config default)")
		longGen    = flag.Int("longga-generations", 2000, "generations for the long-GA probe")
		bench      = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 31)")
		csvDir     = flag.String("csv-dir", "", "also write each experiment's dataset as CSV into this directory")
		maxPorts   = flag.Int("max-ports", 4, "port counts for the ports sweep")
		workers    = flag.Int("workers", runtime.NumCPU(), "worker goroutines for the experiment engine and GA fitness evaluation")
		convBench  = flag.String("convergence-benchmark", "", "benchmark for -exp convergence (default: whole-suite largest)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file when the run finishes")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtmbench:", err)
		os.Exit(1)
	}
	defer stopProfiles()

	cfg := eval.Quick()
	if *full {
		cfg = eval.Full()
	}
	if *maxSeq > 0 {
		cfg.MaxSequences = *maxSeq
	}
	if *maxLen > 0 {
		cfg.MaxSequenceLen = *maxLen
	}
	if *gaGens > 0 {
		cfg.GA.Generations = *gaGens
	}
	if *bench != "" {
		cfg.Benchmarks = strings.Split(*bench, ",")
	}
	if *workers > 1 {
		cfg.GA.Workers = *workers
		cfg.Parallel = *workers
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtmbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	scale := "quick"
	if *full {
		scale = "full (paper budgets)"
	}
	fmt.Fprintf(w, "rtmbench — scale: %s\n\n", scale)

	run := func(name string, f func() (fmt.Stringer, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		r, err := f()
		if err != nil {
			stopProfiles()
			fmt.Fprintf(os.Stderr, "rtmbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "%s\n(%s in %v)\n\n", r, name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", func() (fmt.Stringer, error) {
		return stringer(eval.Table1Render()), nil
	})
	run("fig4", func() (fmt.Stringer, error) {
		r, err := eval.Fig4(cfg)
		if err != nil {
			return nil, err
		}
		if err := writeCSV(*csvDir, "fig4.csv", r.WriteCSV); err != nil {
			return nil, err
		}
		return stringer(r.Render()), nil
	})
	run("fig5", func() (fmt.Stringer, error) {
		r, err := eval.Fig5(cfg)
		if err != nil {
			return nil, err
		}
		if err := writeCSV(*csvDir, "fig5.csv", r.WriteCSV); err != nil {
			return nil, err
		}
		return stringer(r.Render()), nil
	})
	run("fig6", func() (fmt.Stringer, error) {
		r, err := eval.Fig6(cfg)
		if err != nil {
			return nil, err
		}
		if err := writeCSV(*csvDir, "fig6.csv", r.WriteCSV); err != nil {
			return nil, err
		}
		return stringer(r.Render()), nil
	})
	run("ports", func() (fmt.Stringer, error) {
		r, err := eval.PortsSweep(cfg, *maxPorts)
		if err != nil {
			return nil, err
		}
		if err := writeCSV(*csvDir, "ports.csv", r.WriteCSV); err != nil {
			return nil, err
		}
		return stringer(r.Render()), nil
	})
	run("latency", func() (fmt.Stringer, error) {
		r, err := eval.Latency(cfg)
		if err != nil {
			return nil, err
		}
		return stringer(r.Render()), nil
	})
	run("headline", func() (fmt.Stringer, error) {
		r, err := eval.Headline(cfg)
		if err != nil {
			return nil, err
		}
		return stringer(r.Render()), nil
	})
	run("longga", func() (fmt.Stringer, error) {
		r, err := eval.LongGA(cfg, *longGen)
		if err != nil {
			return nil, err
		}
		return stringer(r.Render()), nil
	})
	run("tensor", func() (fmt.Stringer, error) {
		r, err := eval.Tensor(cfg)
		if err != nil {
			return nil, err
		}
		return stringer(r.Render()), nil
	})
	run("convergence", func() (fmt.Stringer, error) {
		r, err := eval.Convergence(cfg, *convBench)
		if err != nil {
			return nil, err
		}
		if err := writeCSV(*csvDir, "convergence.csv", func(w io.Writer) error { return r.WriteCSV(w) }); err != nil {
			return nil, err
		}
		return stringer(r.Render()), nil
	})
}

type stringer string

func (s stringer) String() string { return string(s) }

// writeCSV writes a dataset into dir/name when a CSV directory was
// requested.
func writeCSV(dir, name string, write func(io.Writer) error) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(dir + "/" + name)
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}
