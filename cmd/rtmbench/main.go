// Command rtmbench regenerates the paper's tables and figures on the
// synthetic OffsetStone suite.
//
// Usage:
//
//	rtmbench -exp table1
//	rtmbench -exp fig4               # quick scale by default
//	rtmbench -exp fig4 -full         # the paper's full GA/RW budgets (slow)
//	rtmbench -exp all -out results.txt
//	rtmbench -exp all -timeout 10m   # abort cleanly via context
//
// Experiments: table1, fig4, fig5, fig6, latency, headline, longga,
// ports (extension: shifts vs access-port count), pareto (extension:
// Table I configs × ports × fault rates, Pareto front over runtime,
// energy and area), portfolio (extension: race every strategy per
// sequence), convergence (seeded vs cold GA trajectories), tensor
// (LCTES'19-style contractions), all.
//
// rtmbench is written entirely against the public racetrack.Lab session
// API: one Lab runs every experiment through Lab.Run with a typed
// ExperimentSpec.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	racetrack "repro"
	"repro/cmd/internal/profiling"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: table1, fig4, fig5, fig6, latency, headline, longga, ports, pareto, portfolio, convergence, tensor, all")
		full       = flag.Bool("full", false, "use the paper's full GA/RW budgets (slow: hours)")
		portfolio  = flag.Bool("portfolio", false, "shorthand for -exp portfolio")
		islands    = flag.Int("islands", 0, "GA islands for every experiment's GA cells (>1: island-model GA with ring elite migration)")
		out        = flag.String("out", "", "write results to this file as well as stdout")
		maxSeq     = flag.Int("max-sequences", 0, "override sequences per benchmark (0 = config default)")
		maxLen     = flag.Int("max-length", 0, "override max sequence length (0 = config default)")
		gaGens     = flag.Int("ga-generations", 0, "override GA generations (0 = config default)")
		longGen    = flag.Int("longga-generations", 2000, "generations for the long-GA probe")
		bench      = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 31)")
		csvDir     = flag.String("csv-dir", "", "also write each experiment's dataset as CSV into this directory")
		maxPorts   = flag.Int("max-ports", 4, "port counts for the ports sweep")
		paretoP    = flag.String("pareto-ports", "", "comma-separated port counts for the pareto sweep (default 1,2)")
		faultRates = flag.String("fault-rates", "", "comma-separated position-error rates in [0,1) for the pareto sweep (default 0,0.01)")
		ports      = flag.Int("ports", 0, "access ports per track for every experiment (0/1 = the paper's single-port model); the ports sweep ignores this and sweeps 1..max-ports")
		workers    = flag.Int("workers", runtime.NumCPU(), "worker goroutines for the experiment engine and GA fitness evaluation")
		timeout    = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
		convBench  = flag.String("convergence-benchmark", "", "benchmark for -exp convergence (default: whole-suite largest)")
		progress   = flag.Bool("progress", false, "report every experiment cell as it finishes (stderr)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file when the run finishes")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtmbench:", err)
		os.Exit(1)
	}
	defer stopProfiles()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := racetrack.QuickConfig()
	if *full {
		cfg = racetrack.FullConfig()
	}
	if *maxSeq > 0 {
		cfg.MaxSequences = *maxSeq
	}
	if *maxLen > 0 {
		cfg.MaxSequenceLen = *maxLen
	}
	if *gaGens > 0 {
		cfg.GA.Generations = *gaGens
	}
	if *islands > 0 {
		cfg.GA.Islands = *islands
	}
	if *portfolio {
		*exp = "portfolio"
	}
	if *bench != "" {
		cfg.Benchmarks = strings.Split(*bench, ",")
	}
	if *ports > 0 {
		cfg.Ports = *ports
	}
	paretoPorts, err := parseIntList(*paretoP)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtmbench: -pareto-ports:", err)
		os.Exit(1)
	}
	rates, err := parseFloatList(*faultRates)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtmbench: -fault-rates:", err)
		os.Exit(1)
	}
	labOpts := []racetrack.Option{}
	if *workers > 0 {
		labOpts = append(labOpts, racetrack.WithWorkers(*workers))
	}
	if *workers > 1 {
		cfg.GA.Workers = *workers
	}
	if *progress {
		labOpts = append(labOpts, racetrack.WithProgress(func(ev racetrack.ProgressEvent) {
			if ev.Done && ev.Err == nil {
				fmt.Fprintf(os.Stderr, "cell %d/%d %s q=%d: %d shifts\n",
					ev.Cell+1, ev.Cells, ev.Strategy, ev.DBCs, ev.Shifts)
			}
		}))
	}
	lab, err := racetrack.New(labOpts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtmbench:", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtmbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	scale := "quick"
	if *full {
		scale = "full (paper budgets)"
	}
	fmt.Fprintf(w, "rtmbench — scale: %s\n\n", scale)

	for _, e := range racetrack.Experiments() {
		if *exp != "all" && *exp != string(e) {
			continue
		}
		start := time.Now()
		res, err := lab.Run(ctx, racetrack.ExperimentSpec{
			Experiment:  e,
			Config:      cfg,
			MaxPorts:    *maxPorts,
			Generations: *longGen,
			Benchmark:   *convBench,
			ParetoPorts: paretoPorts,
			FaultRates:  rates,
		})
		if err != nil {
			stopProfiles()
			fmt.Fprintf(os.Stderr, "rtmbench: %s: %v\n", e, err)
			os.Exit(1)
		}
		if err := writeExperimentCSV(*csvDir, res); err != nil {
			stopProfiles()
			fmt.Fprintf(os.Stderr, "rtmbench: %s: %v\n", e, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "%s\n(%s in %v)\n\n", res.Render(), e, time.Since(start).Round(time.Millisecond))
	}
}

// parseIntList parses a comma-separated list of ints; "" is nil (the
// spec's default applies).
func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parseFloatList parses a comma-separated list of floats; "" is nil.
func parseFloatList(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// writeExperimentCSV writes the experiment's dataset into dir when a CSV
// directory was requested and the dataset has a CSV form.
func writeExperimentCSV(dir string, res *racetrack.ExperimentResult) error {
	if dir == "" {
		return nil
	}
	var write func(io.Writer) error
	var name string
	switch {
	case res.Fig4 != nil:
		name, write = "fig4.csv", res.Fig4.WriteCSV
	case res.Fig5 != nil:
		name, write = "fig5.csv", res.Fig5.WriteCSV
	case res.Fig6 != nil:
		name, write = "fig6.csv", res.Fig6.WriteCSV
	case res.Ports != nil:
		name, write = "ports.csv", res.Ports.WriteCSV
	case res.Convergence != nil:
		name, write = "convergence.csv", res.Convergence.WriteCSV
	case res.Pareto != nil:
		name, write = "pareto.csv", res.Pareto.WriteCSV
	default:
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(dir + "/" + name)
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}
