// Command tracegen emits synthetic OffsetStone-like access traces in the
// text format consumed by rtmplace.
//
// Usage:
//
//	tracegen -list
//	tracegen gsm > gsm.trace
//	tracegen -vars 40 -len 600 -sequences 3 -phases 3 custom > c.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/offsetstone"
	"repro/internal/trace"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list available benchmark names")
		all       = flag.String("all", "", "write every benchmark as <dir>/<name>.trace and exit")
		vars      = flag.Int("vars", 0, "custom profile: max variables per sequence")
		length    = flag.Int("len", 0, "custom profile: max sequence length")
		sequences = flag.Int("sequences", 4, "custom profile: number of sequences")
		phases    = flag.Int("phases", 3, "custom profile: program phases per sequence")
		loopiness = flag.Float64("loopiness", 0.5, "custom profile: loop-kernel fraction")
		writes    = flag.Float64("writes", 0.3, "custom profile: write fraction")
	)
	flag.Parse()

	if *list {
		for _, n := range offsetstone.Names() {
			p, _ := offsetstone.ProfileFor(n)
			fmt.Printf("%-10s %2d sequences, %4d..%4d vars, %4d..%4d accesses\n",
				n, p.Sequences, p.MinVars, p.MaxVars, p.MinLen, p.MaxLen)
		}
		return
	}
	if *all != "" {
		if err := writeAll(*all); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracegen [-list] [flags] <benchmark-name>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	name := flag.Arg(0)

	var b *trace.Benchmark
	if *vars > 0 && *length > 0 {
		b = offsetstone.GenerateProfile(offsetstone.Profile{
			Name: name, Sequences: *sequences,
			MinVars: 2, MaxVars: *vars,
			MinLen: 2, MaxLen: *length,
			Phases: *phases, Loopiness: *loopiness,
			HotFraction: 0.15, WriteFraction: *writes,
		})
	} else {
		var err error
		b, err = offsetstone.Generate(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	}
	if err := trace.Write(os.Stdout, b); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// writeAll dumps the full synthetic suite into dir, one file per
// benchmark.
func writeAll(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range offsetstone.Names() {
		b, err := offsetstone.Generate(name)
		if err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(dir, name+".trace"))
		if err != nil {
			return err
		}
		if err := trace.Write(f, b); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
