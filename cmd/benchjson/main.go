// Command benchjson converts `go test -bench` text output into a JSON
// benchmark snapshot and gates performance regressions against a
// committed baseline. It is the tooling behind CI's bench job (see
// .github/workflows/ci.yml): every run emits BENCH_pr<N>.json as an
// artifact and fails the job when a benchmark's ns/op regresses more than
// the tolerance over BENCH_baseline.json.
//
// Usage:
//
//	go test -bench=... -benchtime=1x -count=3 ./... | benchjson -o BENCH_pr2.json
//	benchjson -compare -baseline BENCH_baseline.json -current BENCH_pr2.json -tolerance 0.20
//
// With -count > 1 the snapshot keeps the minimum ns/op per benchmark (the
// steadiest estimate under scheduler noise); non-timing metrics emitted
// via b.ReportMetric (shifts, hit%, ...) are deterministic in this
// repository, so the last observation is kept.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is the JSON schema: benchmark name → unit → value.
type Snapshot struct {
	Schema     string                        `json:"schema"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

const schemaID = "rtm-bench/v1"

func main() {
	var (
		out       = flag.String("o", "", "write the JSON snapshot to this file (default stdout)")
		compare   = flag.Bool("compare", false, "compare -current against -baseline instead of parsing")
		baseline  = flag.String("baseline", "", "baseline snapshot for -compare")
		current   = flag.String("current", "", "current snapshot for -compare")
		tolerance = flag.Float64("tolerance", 0.20, "allowed fractional ns/op regression before failing")
	)
	flag.Parse()

	if *compare {
		if *baseline == "" || *current == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -compare requires -baseline and -current")
			os.Exit(2)
		}
		base, err := readSnapshot(*baseline)
		if err != nil {
			fatal(err)
		}
		cur, err := readSnapshot(*current)
		if err != nil {
			fatal(err)
		}
		report, failed := Compare(base, cur, *tolerance)
		fmt.Print(report)
		if failed {
			os.Exit(1)
		}
		return
	}

	snap, err := Parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(2)
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Schema != schemaID {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, s.Schema, schemaID)
	}
	return &s, nil
}

// Parse reads `go test -bench` output and aggregates benchmark lines into
// a snapshot. Benchmark lines look like
//
//	BenchmarkTwoOptDelta-8    1    20335708 ns/op    53147 shifts
//
// i.e. name-GOMAXPROCS, iteration count, then (value, unit) pairs. The
// GOMAXPROCS suffix is stripped so snapshots compare across machines.
func Parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Schema: schemaID, Benchmarks: map[string]map[string]float64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count: some other Benchmark-prefixed line
		}
		name := trimProcs(fields[0])
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // trailing non-measurement columns
			}
			unit := fields[i+1]
			m := snap.Benchmarks[name]
			if m == nil {
				m = map[string]float64{}
				snap.Benchmarks[name] = m
			}
			if prev, seen := m[unit]; seen && unit == "ns/op" && prev <= val {
				continue // keep the minimum timing across -count runs
			}
			m[unit] = val
		}
	}
	return snap, sc.Err()
}

// trimProcs strips the -GOMAXPROCS suffix go test appends to benchmark
// names (Benchmark/sub-8 → Benchmark/sub).
func trimProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Compare checks every baseline benchmark against the current snapshot:
// a missing benchmark or an ns/op regression beyond the tolerance fails.
// Benchmarks only present in the current snapshot are reported but never
// fail (new benchmarks land before their baseline entry). Non-timing
// units are reported informationally.
func Compare(base, cur *Snapshot, tolerance float64) (string, bool) {
	var b strings.Builder
	failed := false

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(&b, "benchmark comparison (tolerance %+.0f%% ns/op)\n", 100*tolerance)
	for _, name := range names {
		bm := base.Benchmarks[name]
		cm, ok := cur.Benchmarks[name]
		if !ok {
			fmt.Fprintf(&b, "  FAIL %-48s missing from current run\n", name)
			failed = true
			continue
		}
		baseNs, hasBase := bm["ns/op"]
		curNs, hasCur := cm["ns/op"]
		switch {
		case !hasBase || !hasCur:
			fmt.Fprintf(&b, "  ok   %-48s (no ns/op to compare)\n", name)
		case baseNs <= 0:
			fmt.Fprintf(&b, "  ok   %-48s (degenerate baseline %.0f ns/op)\n", name, baseNs)
		default:
			ratio := curNs / baseNs
			verdict := "ok  "
			if ratio > 1+tolerance {
				verdict = "FAIL"
				failed = true
			}
			fmt.Fprintf(&b, "  %s %-48s %12.0f -> %12.0f ns/op  (%+.1f%%)\n",
				verdict, name, baseNs, curNs, 100*(ratio-1))
		}
		for _, unit := range sortedUnits(bm) {
			if unit == "ns/op" {
				continue
			}
			if cv, ok := cm[unit]; ok && cv != bm[unit] {
				fmt.Fprintf(&b, "       %-48s %s drifted %g -> %g\n", name, unit, bm[unit], cv)
			}
		}
	}
	var fresh []string
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		fmt.Fprintf(&b, "  new  %-48s (not in baseline)\n", name)
	}
	if failed {
		b.WriteString("FAIL: benchmark regression over baseline — investigate, or refresh BENCH_baseline.json if the change is intended\n")
	} else {
		b.WriteString("PASS: no benchmark regressions over baseline\n")
	}
	return b.String(), failed
}

func sortedUnits(m map[string]float64) []string {
	units := make([]string, 0, len(m))
	for u := range m {
		units = append(units, u)
	}
	sort.Strings(units)
	return units
}
