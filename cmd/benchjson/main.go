// Command benchjson converts `go test -bench` text output into a JSON
// benchmark snapshot and gates performance regressions against a
// committed baseline. It is the tooling behind CI's bench job (see
// .github/workflows/ci.yml): every run emits BENCH_pr<N>.json as an
// artifact and fails the job when a benchmark's ns/op — or, with
// -benchmem output present, allocs/op — regresses more than the
// tolerance over BENCH_baseline.json.
//
// Usage:
//
//	go test -bench=... -benchtime=1x -count=3 -benchmem ./... | benchjson -o BENCH_pr3.json
//	benchjson -compare -baseline BENCH_baseline.json -current BENCH_pr3.json -tolerance 0.20
//
// With -count > 1 the snapshot keeps the minimum ns/op, B/op and
// allocs/op per benchmark (the steadiest estimates under scheduler
// noise); non-timing metrics emitted via b.ReportMetric (shifts, hit%,
// ...) are deterministic in this repository, so the last observation is
// kept. Alloc regressions gate because the repository's hot evaluation
// paths are required to stay allocation-free in steady state (DESIGN.md
// §8): a creeping allocs/op is a correctness-of-intent failure long
// before it is a wall-clock one.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is the JSON schema: benchmark name → unit → value.
type Snapshot struct {
	Schema     string                        `json:"schema"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

const schemaID = "rtm-bench/v1"

func main() {
	var (
		out       = flag.String("o", "", "write the JSON snapshot to this file (default stdout)")
		compare   = flag.Bool("compare", false, "compare -current against -baseline instead of parsing")
		baseline  = flag.String("baseline", "", "baseline snapshot for -compare")
		current   = flag.String("current", "", "current snapshot for -compare")
		tolerance = flag.Float64("tolerance", 0.20, "allowed fractional ns/op regression before failing")
	)
	flag.Parse()

	if *compare {
		if *baseline == "" || *current == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -compare requires -baseline and -current")
			os.Exit(2)
		}
		base, err := readSnapshot(*baseline)
		if err != nil {
			fatal(err)
		}
		cur, err := readSnapshot(*current)
		if err != nil {
			fatal(err)
		}
		report, failed := Compare(base, cur, *tolerance)
		fmt.Print(report)
		if failed {
			os.Exit(1)
		}
		return
	}

	snap, err := Parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(2)
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Schema != schemaID {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, s.Schema, schemaID)
	}
	return &s, nil
}

// Parse reads `go test -bench` output and aggregates benchmark lines into
// a snapshot. Benchmark lines look like
//
//	BenchmarkTwoOptDelta-8    1    20335708 ns/op    53147 shifts
//
// i.e. name-GOMAXPROCS, iteration count, then (value, unit) pairs. The
// GOMAXPROCS suffix is stripped so snapshots compare across machines.
func Parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Schema: schemaID, Benchmarks: map[string]map[string]float64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count: some other Benchmark-prefixed line
		}
		name := trimProcs(fields[0])
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // trailing non-measurement columns
			}
			unit := fields[i+1]
			m := snap.Benchmarks[name]
			if m == nil {
				m = map[string]float64{}
				snap.Benchmarks[name] = m
			}
			if prev, seen := m[unit]; seen && minUnit(unit) && prev <= val {
				continue // keep the minimum across -count runs
			}
			m[unit] = val
		}
	}
	return snap, sc.Err()
}

// minUnit reports whether a unit aggregates by minimum across -count
// runs: timings and allocation counters, where the smallest observation
// is the least scheduler/GC-noise-contaminated one.
func minUnit(unit string) bool {
	return unit == "ns/op" || unit == "B/op" || unit == "allocs/op"
}

// trimProcs strips the -GOMAXPROCS suffix go test appends to benchmark
// names (Benchmark/sub-8 → Benchmark/sub).
func trimProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Compare checks every baseline benchmark against the current snapshot:
// a missing benchmark, an ns/op regression beyond the tolerance, or an
// allocs/op regression beyond the tolerance (plus a small absolute
// slack for tiny counts; a zero-alloc baseline is a hard floor) fails.
// Benchmarks only present in the current snapshot are reported but never
// fail (new benchmarks land before their baseline entry). Other units
// are reported informationally.
func Compare(base, cur *Snapshot, tolerance float64) (string, bool) {
	var b strings.Builder
	failed := false

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(&b, "benchmark comparison (tolerance %+.0f%% ns/op and allocs/op)\n", 100*tolerance)
	for _, name := range names {
		bm := base.Benchmarks[name]
		cm, ok := cur.Benchmarks[name]
		if !ok {
			fmt.Fprintf(&b, "  FAIL %-48s missing from current run\n", name)
			failed = true
			continue
		}
		baseNs, hasBase := bm["ns/op"]
		curNs, hasCur := cm["ns/op"]
		switch {
		case !hasBase || !hasCur:
			fmt.Fprintf(&b, "  ok   %-48s (no ns/op to compare)\n", name)
		case baseNs <= 0:
			fmt.Fprintf(&b, "  ok   %-48s (degenerate baseline %.0f ns/op)\n", name, baseNs)
		default:
			ratio := curNs / baseNs
			verdict := "ok  "
			if ratio > 1+tolerance {
				verdict = "FAIL"
				failed = true
			}
			fmt.Fprintf(&b, "  %s %-48s %12.0f -> %12.0f ns/op  (%+.1f%%)\n",
				verdict, name, baseNs, curNs, 100*(ratio-1))
		}
		if baseA, ok := bm["allocs/op"]; ok {
			switch curA, ok := cm["allocs/op"]; {
			case !ok:
				// A baseline-gated unit that vanished (e.g. -benchmem
				// dropped from the bench job) would silently disarm the
				// gate; treat it like a missing benchmark.
				fmt.Fprintf(&b, "  FAIL %-48s allocs/op gated in baseline but missing from current run\n", name)
				failed = true
			case allocRegressed(baseA, curA, tolerance):
				fmt.Fprintf(&b, "  FAIL %-48s %12.0f -> %12.0f allocs/op\n", name, baseA, curA)
				failed = true
			}
		}
		for _, unit := range sortedUnits(bm) {
			if unit == "ns/op" || unit == "allocs/op" || unit == "B/op" {
				continue
			}
			if cv, ok := cm[unit]; ok && cv != bm[unit] {
				fmt.Fprintf(&b, "       %-48s %s drifted %g -> %g\n", name, unit, bm[unit], cv)
			}
		}
	}
	var fresh []string
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		fmt.Fprintf(&b, "  new  %-48s (not in baseline)\n", name)
	}
	if failed {
		b.WriteString("FAIL: benchmark regression over baseline — investigate, or refresh BENCH_baseline.json if the change is intended\n")
	} else {
		b.WriteString("PASS: no benchmark regressions over baseline\n")
	}
	return b.String(), failed
}

// allocRegressed applies the alloc gate: a zero-alloc baseline must stay
// at zero; otherwise the count may grow by the fractional tolerance plus
// a slack of 8 allocations (tiny counts jitter with map growth and GC
// timing without signifying a real leak).
func allocRegressed(base, cur, tolerance float64) bool {
	if base == 0 {
		return cur > 0
	}
	return cur > base*(1+tolerance)+8
}

func sortedUnits(m map[string]float64) []string {
	units := make([]string, 0, len(m))
	for u := range m {
		units = append(units, u)
	}
	sort.Strings(units)
	return units
}
