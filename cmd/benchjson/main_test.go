package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro/internal/placement
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTwoOptFull-8       	       1	1219475622 ns/op	     53147 shifts
BenchmarkTwoOptDelta-8      	       1	  20335708 ns/op	     53147 shifts	    2048 B/op	      31 allocs/op
BenchmarkTwoOptDelta-8      	       1	  19000000 ns/op	     53147 shifts	    2040 B/op	      30 allocs/op
BenchmarkTwoOptDelta-8      	       1	  21000000 ns/op	     53147 shifts	    2048 B/op	      32 allocs/op
BenchmarkGALocalImprove/off-8    	       1	   7641220 ns/op	       144.0 shifts
BenchmarkGALocalImprove/on-8     	       1	   5748466 ns/op	       140.0 shifts
PASS
ok  	repro/internal/placement	1.247s
`

func TestParse(t *testing.T) {
	snap, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Schema != schemaID {
		t.Errorf("schema %q", snap.Schema)
	}
	if len(snap.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(snap.Benchmarks), snap.Benchmarks)
	}
	// -count aggregation keeps the minimum ns/op, B/op and allocs/op.
	delta := snap.Benchmarks["BenchmarkTwoOptDelta"]
	if delta["ns/op"] != 19000000 {
		t.Errorf("ns/op %v, want min 19000000", delta["ns/op"])
	}
	if delta["allocs/op"] != 30 {
		t.Errorf("allocs/op %v, want min 30", delta["allocs/op"])
	}
	if delta["B/op"] != 2040 {
		t.Errorf("B/op %v, want min 2040", delta["B/op"])
	}
	if delta["shifts"] != 53147 {
		t.Errorf("shifts %v, want 53147", delta["shifts"])
	}
	// Sub-benchmark names keep the slash path, lose the -GOMAXPROCS.
	if _, ok := snap.Benchmarks["BenchmarkGALocalImprove/on"]; !ok {
		t.Errorf("missing sub-benchmark: %v", snap.Benchmarks)
	}
}

func TestTrimProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":      "BenchmarkFoo",
		"BenchmarkFoo/sub-16": "BenchmarkFoo/sub",
		"BenchmarkFoo":        "BenchmarkFoo",
		"BenchmarkFoo-bar":    "BenchmarkFoo-bar",
	} {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func snapOf(entries map[string]map[string]float64) *Snapshot {
	return &Snapshot{Schema: schemaID, Benchmarks: entries}
}

func TestCompareWithinTolerance(t *testing.T) {
	base := snapOf(map[string]map[string]float64{
		"BenchmarkA": {"ns/op": 1000, "shifts": 50},
	})
	cur := snapOf(map[string]map[string]float64{
		"BenchmarkA": {"ns/op": 1150, "shifts": 50},
		"BenchmarkB": {"ns/op": 99999},
	})
	report, failed := Compare(base, cur, 0.20)
	if failed {
		t.Fatalf("15%% regression at 20%% tolerance failed:\n%s", report)
	}
	if !strings.Contains(report, "new  BenchmarkB") {
		t.Errorf("new benchmark not reported:\n%s", report)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	base := snapOf(map[string]map[string]float64{"BenchmarkA": {"ns/op": 1000}})
	cur := snapOf(map[string]map[string]float64{"BenchmarkA": {"ns/op": 1201}})
	report, failed := Compare(base, cur, 0.20)
	if !failed {
		t.Fatalf("20.1%% regression at 20%% tolerance passed:\n%s", report)
	}
	if !strings.Contains(report, "FAIL BenchmarkA") {
		t.Errorf("regressed benchmark not named:\n%s", report)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := snapOf(map[string]map[string]float64{"BenchmarkGone": {"ns/op": 1000}})
	cur := snapOf(map[string]map[string]float64{})
	report, failed := Compare(base, cur, 0.20)
	if !failed {
		t.Fatalf("missing benchmark passed:\n%s", report)
	}
	if !strings.Contains(report, "missing from current run") {
		t.Errorf("missing benchmark not reported:\n%s", report)
	}
}

func TestCompareAllocRegressionFails(t *testing.T) {
	base := snapOf(map[string]map[string]float64{"BenchmarkA": {"ns/op": 1000, "allocs/op": 100}})
	cur := snapOf(map[string]map[string]float64{"BenchmarkA": {"ns/op": 1000, "allocs/op": 140}})
	report, failed := Compare(base, cur, 0.20)
	if !failed {
		t.Fatalf("40%% alloc regression at 20%% tolerance passed:\n%s", report)
	}
	if !strings.Contains(report, "allocs/op") {
		t.Errorf("alloc regression not named:\n%s", report)
	}
}

func TestCompareAllocSlackForTinyCounts(t *testing.T) {
	base := snapOf(map[string]map[string]float64{"BenchmarkA": {"ns/op": 1000, "allocs/op": 3}})
	cur := snapOf(map[string]map[string]float64{"BenchmarkA": {"ns/op": 1000, "allocs/op": 9}})
	if report, failed := Compare(base, cur, 0.20); failed {
		t.Fatalf("tiny alloc jitter within slack failed:\n%s", report)
	}
}

func TestCompareZeroAllocBaselineIsHardFloor(t *testing.T) {
	base := snapOf(map[string]map[string]float64{"BenchmarkA": {"ns/op": 1000, "allocs/op": 0}})
	cur := snapOf(map[string]map[string]float64{"BenchmarkA": {"ns/op": 1000, "allocs/op": 1}})
	if report, failed := Compare(base, cur, 0.20); !failed {
		t.Fatalf("zero-alloc baseline regression passed:\n%s", report)
	}
}

func TestCompareMissingAllocUnitFails(t *testing.T) {
	base := snapOf(map[string]map[string]float64{"BenchmarkA": {"ns/op": 1000, "allocs/op": 0}})
	cur := snapOf(map[string]map[string]float64{"BenchmarkA": {"ns/op": 1000}})
	report, failed := Compare(base, cur, 0.20)
	if !failed {
		t.Fatalf("vanished allocs/op unit disarmed the gate silently:\n%s", report)
	}
	if !strings.Contains(report, "missing from current run") {
		t.Errorf("missing alloc unit not reported:\n%s", report)
	}
}

func TestCompareReportsMetricDrift(t *testing.T) {
	base := snapOf(map[string]map[string]float64{"BenchmarkA": {"ns/op": 1000, "shifts": 50}})
	cur := snapOf(map[string]map[string]float64{"BenchmarkA": {"ns/op": 1000, "shifts": 60}})
	report, failed := Compare(base, cur, 0.20)
	if failed {
		t.Fatalf("metric drift alone must not fail:\n%s", report)
	}
	if !strings.Contains(report, "drifted 50 -> 60") {
		t.Errorf("shifts drift not reported:\n%s", report)
	}
}
