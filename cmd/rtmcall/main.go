// Command rtmcall is the CLI client for rtmserve (package rtmclient).
// It submits one placement request — or, in flood mode (-n > 1), many
// concurrent ones — and reports the outcome, making overload behavior
// (sheds, coalescing, cache warmth) observable from a shell. Exit
// status is 0 only when every request that was supposed to succeed did.
//
//	rtmcall -addr http://127.0.0.1:8723 -trace "a b a b c a c a"
//	rtmcall -addr http://127.0.0.1:8723 -trace "a b a b" -n 50 -c 10 -retries 0
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/rtmclient"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8723", "rtmserve base URL")
		traceStr = flag.String("trace", "", "access trace (token format; required)")
		strategy = flag.String("strategy", "", "placement strategy (server default: DMA-OFU)")
		dbcs     = flag.Int("dbcs", 0, "DBC count (0 = server default)")
		objctv   = flag.String("objective", "", "cost objective: shifts, energy, runtime, faulty:<rate> (empty = no pricing)")
		deadline = flag.Duration("deadline", 0, "requested search budget (0 = server default)")
		tenant   = flag.String("tenant", "", "tenant label for admission control")
		n        = flag.Int("n", 1, "number of requests (flood mode when > 1)")
		conc     = flag.Int("c", 8, "request concurrency in flood mode")
		vary     = flag.Bool("vary", false, "flood mode: make every trace unique (defeats coalescing and cache)")
		retries  = flag.Int("retries", 5, "client retry budget for 429/503 sheds")
		timeout  = flag.Duration("timeout", 2*time.Minute, "overall client deadline")
		quiet    = flag.Bool("quiet", false, "suppress per-request output")
	)
	flag.Parse()
	if *traceStr == "" {
		fmt.Fprintln(os.Stderr, "rtmcall: -trace is required")
		os.Exit(2)
	}

	cl := rtmclient.New(*addr, rtmclient.WithRetries(*retries))
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	req := rtmclient.PlaceRequest{
		Trace:          *traceStr,
		Strategy:       *strategy,
		DBCs:           *dbcs,
		Objective:      *objctv,
		DeadlineMillis: deadline.Milliseconds(),
		Tenant:         *tenant,
	}

	if *n <= 1 {
		res, err := cl.Place(ctx, &req)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtmcall: %v\n", err)
			os.Exit(1)
		}
		printResult(res)
		return
	}

	// Flood mode: n requests at bounded concurrency, one summary line.
	var ok, shed, partial, cached, coalesced, failed atomic.Int64
	sem := make(chan struct{}, *conc)
	var wg sync.WaitGroup
	for i := 0; i < *n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			r := req
			if *vary {
				// A distinct suffix token per request gives every trace its
				// own fingerprint.
				r.Trace = req.Trace + fmt.Sprintf(" uniq%d", i)
			}
			res, err := cl.Place(ctx, &r)
			switch {
			case err == nil:
				ok.Add(1)
				if res.Partial {
					partial.Add(1)
				}
				if res.Cached {
					cached.Add(1)
				}
				if res.Coalesced {
					coalesced.Add(1)
				}
				if !*quiet {
					fmt.Printf("req %d: shifts=%d partial=%v cached=%v coalesced=%v\n",
						i, res.Shifts, res.Partial, res.Cached, res.Coalesced)
				}
			case isShed(err):
				shed.Add(1)
				if !*quiet {
					fmt.Printf("req %d: shed (%v)\n", i, err)
				}
			default:
				failed.Add(1)
				fmt.Fprintf(os.Stderr, "req %d: failed: %v\n", i, err)
			}
		}(i)
	}
	wg.Wait()
	fmt.Printf("requests=%d ok=%d shed=%d partial=%d cached=%d coalesced=%d failed=%d\n",
		*n, ok.Load(), shed.Load(), partial.Load(), cached.Load(), coalesced.Load(), failed.Load())
	if failed.Load() > 0 {
		os.Exit(1)
	}
}

// isShed reports an overload rejection that exhausted the retry budget
// — an expected outcome when flooding, distinct from a hard failure.
func isShed(err error) bool {
	var se *rtmclient.StatusError
	if errors.As(err, &se) {
		return se.Code == 429 || se.Code == 503
	}
	return false
}

func printResult(res *rtmclient.PlaceResponse) {
	fmt.Printf("strategy=%s dbcs=%d fingerprint=%s shifts=%d partial=%v cached=%v coalesced=%v\n",
		res.Strategy, res.DBCs, res.Fingerprint, res.Shifts, res.Partial, res.Cached, res.Coalesced)
	if c := res.Cost; c != nil {
		fmt.Printf("  cost[%s]: scalar=%g runtime=%gns energy=%gpJ (dynamic=%g leakage=%g) fault_shifts=%g\n",
			c.Objective, c.Scalar, c.RuntimeNS, c.DynamicPJ+c.LeakagePJ, c.DynamicPJ, c.LeakagePJ, c.FaultShifts)
	}
	for i, d := range res.Placement {
		fmt.Printf("  dbc %d: %s\n", i, strings.Join(d, " "))
	}
}
