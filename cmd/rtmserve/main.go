// Command rtmserve runs the racetrack placement service: an HTTP server
// (internal/server) over a racetrack.Lab with admission control,
// request coalescing, per-request deadlines, a crash-safe persistent
// placement cache, and graceful draining on SIGTERM/SIGINT.
//
// Quickstart:
//
//	rtmserve -addr 127.0.0.1:8723 -cache-dir /var/tmp/rtm-cache &
//	rtmcall -addr http://127.0.0.1:8723 -trace "a b a b c a c a"
//
// Shutdown: send SIGTERM. The server stops accepting work (503 +
// Retry-After for new requests), finishes every in-flight placement,
// flushes the cache, and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	racetrack "repro"
	"repro/internal/server"
	"repro/internal/server/diskcache"
)

func main() {
	var (
		addr            = flag.String("addr", "127.0.0.1:8723", "listen address")
		cacheDir        = flag.String("cache-dir", "", "persistent placement cache directory (empty = no cache)")
		maxConcurrent   = flag.Int("max-concurrent", 0, "max concurrently executing placements (0 = GOMAXPROCS)")
		maxQueue        = flag.Int("max-queue", 64, "admission queue length beyond the concurrency limit")
		tenantCap       = flag.Int("tenant-cap", 0, "per-tenant running+queued cap (0 = unlimited)")
		maxDeadline     = flag.Duration("max-deadline", 30*time.Second, "server-side ceiling on a request's search budget")
		retryAfter      = flag.Duration("retry-after", time.Second, "Retry-After hint attached to sheds")
		dbcs            = flag.Int("dbcs", 4, "default DBC count when a request leaves dbcs unset")
		workers         = flag.Int("workers", 0, "Lab worker pool size (0 = NumCPU)")
		spin            = flag.Duration("spin", 0, "artificially lengthen each placement (load-testing knob)")
		drainTimeout    = flag.Duration("drain-timeout", 30*time.Second, "bound on the graceful drain after SIGTERM")
		shutdownTimeout = flag.Duration("shutdown-timeout", 5*time.Second, "bound on closing idle HTTP connections")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "", log.LstdFlags)

	labOpts := []racetrack.Option{racetrack.WithDevice(*dbcs)}
	if *workers > 0 {
		labOpts = append(labOpts, racetrack.WithWorkers(*workers))
	}
	lab, err := racetrack.New(labOpts...)
	if err != nil {
		logger.Fatalf("rtmserve: building lab: %v", err)
	}

	var cache *diskcache.Cache
	if *cacheDir != "" {
		cache, err = diskcache.Open(*cacheDir)
		if err != nil {
			logger.Fatalf("rtmserve: opening cache %s: %v", *cacheDir, err)
		}
		st := cache.Stats()
		logger.Printf("rtmserve: cache open at %s (swept %d temp files, quarantined %d entries)",
			*cacheDir, st.SweptTemps, st.Quarantined)
	}

	srv, err := server.New(server.Config{
		Lab:           lab,
		Cache:         cache,
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		TenantCap:     *tenantCap,
		MaxDeadline:   *maxDeadline,
		RetryAfter:    *retryAfter,
		DefaultDBCs:   *dbcs,
		Spin:          *spin,
		Log:           logger,
	})
	if err != nil {
		logger.Fatalf("rtmserve: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("rtmserve: listen %s: %v", *addr, err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	logger.Printf("rtmserve: listening on %s", ln.Addr())
	fmt.Printf("rtmserve: listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		logger.Printf("rtmserve: %v: draining (new requests get 503, in-flight finish)", sig)
	case err := <-errc:
		logger.Fatalf("rtmserve: serve: %v", err)
	}

	// Drain order matters: flip the gate first so requests arriving on
	// kept-alive connections are refused, then drain the application
	// (in-flight requests finish and the cache flushes), then close the
	// listener and idle connections.
	srv.BeginDrain()
	dctx, dcancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer dcancel()
	if err := srv.Drain(dctx); err != nil {
		logger.Printf("rtmserve: drain incomplete: %v", err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		logger.Printf("rtmserve: shutdown: %v", err)
	}
	logger.Printf("rtmserve: drained, exiting")
	os.Exit(0)
}
