// Command rtmlint runs the repository's invariant suite
// (internal/analysis) over module packages: determinism (detcheck),
// context propagation (ctxcheck), hot-path allocation freedom
// (hotalloc), and no-panic library code (nopanic). It is the static
// half of the contracts the bench gate and fuzz parity enforce at run
// time; CI runs it as a blocking lint step and contributors run it
// before pushing:
//
//	go run ./cmd/rtmlint ./...
//
// Diagnostics print as file:line:col: analyzer: message and any
// finding exits nonzero. Suppress a deliberate exception on its line
// (or the line above) with //rtmlint:<analyzer>-ok <reason> — the
// reason is mandatory. See DESIGN.md §14 for the invariant catalog.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rtmlint [-only a,b] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.Analyzers()
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "rtmlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(cwd, patterns)
	if err != nil {
		fatal(err)
	}

	found := 0
	for _, pkg := range pkgs {
		for _, d := range analysis.RunPackage(pkg, analyzers) {
			found++
			fmt.Printf("%s: %s: %s\n", relPos(cwd, d), d.Analyzer, d.Message)
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "rtmlint: %d finding(s)\n", found)
		os.Exit(1)
	}
}

// relPos shortens absolute diagnostic paths relative to the working
// directory for readable, clickable output.
func relPos(cwd string, d analysis.Diagnostic) string {
	name := d.Pos.Filename
	if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = rel
	}
	return fmt.Sprintf("%s:%d:%d", name, d.Pos.Line, d.Pos.Column)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtmlint:", err)
	os.Exit(2)
}
