package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// cfg returns a runConfig with small search budgets for tests.
func cfg(path, strategy, format string, dbcs int) runConfig {
	return runConfig{
		path: path, strategy: strategy, format: format,
		wordBytes: 4, dbcs: dbcs,
		gaGens: 10, gaMu: 10, rwIters: 50, workers: 2, seed: 1,
	}
}

func TestRunVarsFormat(t *testing.T) {
	path := writeTemp(t, "t.trace", "seq f\na b a b c c\nseq g\nx y x\n")
	c := cfg(path, "DMA-SR", "vars", 4)
	c.verbose = true
	if err := run(c); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunAddrFormat(t *testing.T) {
	path := writeTemp(t, "t.addr", "R 0x100\nW 0x104\nR 0x100\n")
	if err := run(cfg(path, "AFD-OFU", "addr", 2)); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunAllStrategies(t *testing.T) {
	path := writeTemp(t, "t.trace", "a b a b c a c a d d a\n")
	for _, s := range []string{"AFD-OFU", "DMA-OFU", "DMA-Chen", "DMA-SR", "GA", "RW", "DMA-2opt", "GA-2opt"} {
		c := cfg(path, s, "vars", 2)
		c.gaGens, c.gaMu, c.rwIters, c.workers = 5, 8, 20, 1
		if err := run(c); err != nil {
			t.Errorf("%s: %v", s, err)
		}
	}
}

func TestRunNonTableIDBCCount(t *testing.T) {
	// 3 DBCs has no Table I row; placement must still work, energy is
	// skipped gracefully.
	path := writeTemp(t, "t.trace", "a b a b\n")
	if err := run(cfg(path, "DMA-OFU", "vars", 3)); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunTimeout(t *testing.T) {
	// An already-expired timeout aborts before placing anything.
	path := writeTemp(t, "t.trace", "a b a b c a c a d d a\n")
	c := cfg(path, "DMA-SR", "vars", 4)
	c.timeout = time.Nanosecond
	if err := run(c); err == nil {
		t.Error("expired timeout did not abort the run")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(cfg(filepath.Join(t.TempDir(), "missing"), "DMA-SR", "vars", 2)); err == nil {
		t.Error("missing file accepted")
	}
	empty := writeTemp(t, "empty.trace", "# nothing\n")
	if err := run(cfg(empty, "DMA-SR", "vars", 2)); err == nil {
		t.Error("empty trace accepted")
	}
	bad := writeTemp(t, "t.trace", "a b\n")
	if err := run(cfg(bad, "nope", "vars", 2)); err == nil {
		t.Error("unknown strategy accepted")
	}
	if err := run(cfg(bad, "DMA-SR", "bogus", 2)); err == nil {
		t.Error("unknown format accepted")
	}
}
