package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunVarsFormat(t *testing.T) {
	path := writeTemp(t, "t.trace", "seq f\na b a b c c\nseq g\nx y x\n")
	err := run(path, "DMA-SR", "vars", 4, 4, 0, 10, 10, 50, 2, 1, true)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunAddrFormat(t *testing.T) {
	path := writeTemp(t, "t.addr", "R 0x100\nW 0x104\nR 0x100\n")
	if err := run(path, "AFD-OFU", "addr", 4, 2, 0, 10, 10, 50, 2, 1, false); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunAllStrategies(t *testing.T) {
	path := writeTemp(t, "t.trace", "a b a b c a c a d d a\n")
	for _, s := range []string{"AFD-OFU", "DMA-OFU", "DMA-Chen", "DMA-SR", "GA", "RW"} {
		if err := run(path, s, "vars", 4, 2, 0, 5, 8, 20, 1, 1, false); err != nil {
			t.Errorf("%s: %v", s, err)
		}
	}
}

func TestRunNonTableIDBCCount(t *testing.T) {
	// 3 DBCs has no Table I row; placement must still work, energy is
	// skipped gracefully.
	path := writeTemp(t, "t.trace", "a b a b\n")
	if err := run(path, "DMA-OFU", "vars", 4, 3, 0, 5, 8, 20, 1, 1, false); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "missing"), "DMA-SR", "vars", 4, 2, 0, 5, 8, 20, 1, 1, false); err == nil {
		t.Error("missing file accepted")
	}
	empty := writeTemp(t, "empty.trace", "# nothing\n")
	if err := run(empty, "DMA-SR", "vars", 4, 2, 0, 5, 8, 20, 1, 1, false); err == nil {
		t.Error("empty trace accepted")
	}
	bad := writeTemp(t, "t.trace", "a b\n")
	if err := run(bad, "nope", "vars", 4, 2, 0, 5, 8, 20, 1, 1, false); err == nil {
		t.Error("unknown strategy accepted")
	}
	if err := run(bad, "DMA-SR", "bogus", 4, 2, 0, 5, 8, 20, 1, 1, false); err == nil {
		t.Error("unknown format accepted")
	}
}
