// Command rtmplace computes a data placement for an access trace and
// reports its shift cost, latency and energy on a Table I RTM device.
//
// Usage:
//
//	rtmplace -strategy DMA-SR -dbcs 4 trace.txt
//	echo "a b a b c c" | rtmplace -strategy AFD-OFU -dbcs 2 -
//
// The trace format is whitespace-separated variable names, "!" suffix for
// writes, optionally split into multiple sequences with "seq <name>"
// lines (each sequence is placed independently).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	_ "repro" // registers the extension strategies (DMA-2opt)
	"repro/internal/engine"
	"repro/internal/placement"
	"repro/internal/profiling"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		strategy   = flag.String("strategy", "DMA-SR", "placement strategy: "+strategyNames())
		dbcs       = flag.Int("dbcs", 4, "number of DBCs (2, 4, 8 or 16 for Table I energy numbers)")
		capacity   = flag.Int("capacity", 0, "per-DBC capacity in words (0 = unlimited)")
		format     = flag.String("format", "vars", "trace format: 'vars' (named variables) or 'addr' (raw R/W address records)")
		wordSize   = flag.Int("word-bytes", 4, "word granularity for -format addr")
		gaGens     = flag.Int("ga-generations", 200, "GA generations (strategy GA)")
		gaMu       = flag.Int("ga-mu", 100, "GA population size (strategy GA)")
		rwIters    = flag.Int("rw-iterations", 60000, "random-walk iterations (strategy RW)")
		seed       = flag.Int64("seed", 1, "PRNG seed for GA/RW")
		workers    = flag.Int("workers", runtime.NumCPU(), "worker goroutines for placing sequences concurrently")
		verbose    = flag.Bool("v", false, "print the placement layout per sequence")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the placement run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file when the run finishes")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rtmplace [flags] <trace-file|->")
		flag.PrintDefaults()
		os.Exit(2)
	}

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtmplace:", err)
		os.Exit(1)
	}
	if err := run(flag.Arg(0), *strategy, *format, *wordSize, *dbcs, *capacity, *gaGens, *gaMu, *rwIters, *workers, *seed, *verbose); err != nil {
		stopProfiles()
		fmt.Fprintln(os.Stderr, "rtmplace:", err)
		os.Exit(1)
	}
	stopProfiles()
}

// strategyNames lists every registered strategy for the flag help.
func strategyNames() string {
	var names []string
	for _, id := range placement.Registered() {
		names = append(names, string(id))
	}
	return strings.Join(names, ", ")
}

func run(path, strategy, format string, wordSize, dbcs, capacity, gaGens, gaMu, rwIters, workers int, seed int64, verbose bool) error {
	var r io.Reader
	name := path
	if path == "-" {
		r = os.Stdin
		name = "stdin"
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	var b *trace.Benchmark
	switch format {
	case "vars":
		var err error
		b, err = trace.Parse(name, r)
		if err != nil {
			return err
		}
	case "addr":
		s, err := trace.ParseAddressTrace(r, wordSize)
		if err != nil {
			return err
		}
		b = &trace.Benchmark{Name: name, Sequences: []*trace.Sequence{s}}
	default:
		return fmt.Errorf("unknown -format %q (want 'vars' or 'addr')", format)
	}
	if len(b.Sequences) == 0 {
		return fmt.Errorf("no access sequences in %s", name)
	}

	ga := placement.DefaultGAConfig()
	ga.Generations = gaGens
	ga.Mu, ga.Lambda = gaMu, gaMu
	ga.Seed = seed
	opts := placement.Options{
		Capacity: capacity,
		GA:       ga,
		RW:       placement.RWConfig{Iterations: rwIters, Seed: seed},
	}

	id := placement.StrategyID(strategy)
	fmt.Printf("%s: %d sequence(s), strategy %s, %d DBCs\n", name, len(b.Sequences), id, dbcs)

	// Sequences are independent placement problems: fan them out on the
	// shared experiment engine and report in input order.
	jobs := make([]engine.PlaceJob, len(b.Sequences))
	for i, s := range b.Sequences {
		jobs[i] = engine.PlaceJob{Sequence: s, Strategy: id, DBCs: dbcs, Options: opts}
	}
	out, err := engine.BatchPlace(context.Background(), jobs, workers)
	if err != nil {
		return err
	}
	var totalShifts int64
	placements := make([]*placement.Placement, len(b.Sequences))
	for i, s := range b.Sequences {
		placements[i] = out[i].Placement
		totalShifts += out[i].Shifts
		fmt.Printf("  seq %d: %d accesses, %d variables -> %d shifts\n",
			i, s.Len(), len(s.Distinct()), out[i].Shifts)
		if verbose {
			fmt.Printf("    %s\n", placements[i].Render(s))
		}
	}
	fmt.Printf("total shifts: %d\n", totalShifts)

	// Energy/latency when a Table I configuration was selected.
	cfg, err := sim.TableIConfig(dbcs)
	if err != nil {
		fmt.Printf("(no Table I energy model for %d DBCs; shift count only)\n", dbcs)
		return nil
	}
	var agg sim.Result
	for i, s := range b.Sequences {
		r, err := sim.RunSequence(cfg, s, placements[i])
		if err != nil {
			return err
		}
		agg.Add(r)
	}
	fmt.Printf("latency: %.1f ns   energy: %.1f pJ (leakage %.1f / read-write %.1f / shift %.1f)\n",
		agg.LatencyNS, agg.Energy.TotalPJ(),
		agg.Energy.LeakagePJ, agg.Energy.ReadWritePJ, agg.Energy.ShiftPJ)
	return nil
}
