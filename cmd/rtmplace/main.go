// Command rtmplace computes a data placement for an access trace and
// reports its shift cost, latency and energy on a Table I RTM device.
//
// Usage:
//
//	rtmplace -strategy DMA-SR -dbcs 4 trace.txt
//	echo "a b a b c c" | rtmplace -strategy AFD-OFU -dbcs 2 -
//	rtmplace -strategy GA -timeout 30s trace.txt
//	rtmplace -strategy GA -islands 4 trace.txt
//	rtmplace -portfolio trace.txt
//	rtmplace -format bin -stream -window 262144 trace.rtb
//
// The trace format is whitespace-separated variable names, "!" suffix for
// writes, optionally split into multiple sequences with "seq <name>"
// lines (each sequence is placed independently). -format addr reads raw
// R/W address records and -format bin reads the compact binary format
// (produce it with rtmtrace). With -stream the trace is never loaded:
// each sequence is placed window by window in bounded memory through
// Lab.PlaceStream, reporting the stitched shift cost (-stream requires
// -format bin and skips the Table I device simulation).
//
// rtmplace is written entirely against the public racetrack.Lab session
// API: it builds one Lab, places the benchmark through it and simulates
// the placements on the selected Table I device.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	racetrack "repro"
	"repro/cmd/internal/profiling"
)

func main() {
	var (
		strategy   = flag.String("strategy", "DMA-SR", "placement strategy: "+strategyNames())
		dbcs       = flag.Int("dbcs", 4, "number of DBCs (2, 4, 8 or 16 for Table I energy numbers)")
		ports      = flag.Int("ports", 1, "access ports per track; >1 optimizes and simulates under the multi-port cost model")
		capacity   = flag.Int("capacity", 0, "per-DBC capacity in words (0 = unlimited)")
		objective  = flag.String("objective", "", "cost objective to price the placement under: shifts, energy, runtime, faulty:<rate> (empty = shift count only; never changes the placement)")
		format     = flag.String("format", "vars", "trace format: 'vars' (named variables), 'addr' (raw R/W address records) or 'bin' (compact binary)")
		stream     = flag.Bool("stream", false, "place out-of-core: scan the trace window by window in bounded memory (requires -format bin)")
		window     = flag.Int("window", 0, "accesses per placement window for -stream (0 = default)")
		wordSize   = flag.Int("word-bytes", 4, "word granularity for -format addr")
		gaGens     = flag.Int("ga-generations", 200, "GA generations (strategy GA)")
		gaMu       = flag.Int("ga-mu", 100, "GA population size (strategy GA)")
		islands    = flag.Int("islands", 0, "GA islands: >1 runs the island-model GA with ring elite migration (strategy GA)")
		portfolio  = flag.Bool("portfolio", false, "race the whole strategy portfolio per sequence and keep the winner (ignores -strategy)")
		rwIters    = flag.Int("rw-iterations", 60000, "random-walk iterations (strategy RW)")
		seed       = flag.Int64("seed", 1, "PRNG seed for GA/RW")
		workers    = flag.Int("workers", runtime.NumCPU(), "worker goroutines for placing sequences concurrently")
		timeout    = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
		verbose    = flag.Bool("v", false, "print the placement layout per sequence")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the placement run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file when the run finishes")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rtmplace [flags] <trace-file|->")
		flag.PrintDefaults()
		os.Exit(2)
	}

	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtmplace:", err)
		os.Exit(1)
	}
	cfg := runConfig{
		path: flag.Arg(0), strategy: *strategy, format: *format,
		wordBytes: *wordSize, dbcs: *dbcs, ports: *ports, capacity: *capacity,
		objective: *objective,
		gaGens:    *gaGens, gaMu: *gaMu, islands: *islands, rwIters: *rwIters,
		portfolio: *portfolio, stream: *stream, window: *window,
		workers: *workers, seed: *seed, timeout: *timeout, verbose: *verbose,
	}
	if err := run(cfg); err != nil {
		stopProfiles()
		fmt.Fprintln(os.Stderr, "rtmplace:", err)
		os.Exit(1)
	}
	stopProfiles()
}

// strategyNames lists every registered strategy for the flag help.
func strategyNames() string {
	var names []string
	for _, id := range racetrack.RegisteredStrategies() {
		names = append(names, string(id))
	}
	return strings.Join(names, ", ")
}

// runConfig carries the flag values into run.
type runConfig struct {
	path      string
	strategy  string
	format    string
	wordBytes int
	dbcs      int
	ports     int
	capacity  int
	objective string
	gaGens    int
	gaMu      int
	islands   int
	portfolio bool
	stream    bool
	window    int
	rwIters   int
	workers   int
	seed      int64
	timeout   time.Duration
	verbose   bool
}

// placeOptions translates the flag values into PlaceOptions, shared by
// the in-RAM and streaming paths.
func (cfg runConfig) placeOptions() racetrack.PlaceOptions {
	ga := racetrack.DefaultGAConfig()
	ga.Generations = cfg.gaGens
	ga.Mu, ga.Lambda = cfg.gaMu, cfg.gaMu
	ga.Seed = cfg.seed
	ga.Islands = cfg.islands
	return racetrack.PlaceOptions{
		Strategy:  racetrack.Strategy(cfg.strategy),
		DBCs:      cfg.dbcs,
		Capacity:  cfg.capacity,
		Objective: cfg.objective,
		GA:        ga,
		RW:        racetrack.RWConfig{Iterations: cfg.rwIters, Seed: cfg.seed},
		Ports:     cfg.ports,
		Window:    cfg.window,
	}
}

func run(cfg runConfig) error {
	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	if cfg.stream {
		switch {
		case cfg.format != "bin":
			return fmt.Errorf("-stream requires -format bin (convert the trace with rtmtrace first)")
		case cfg.portfolio:
			return fmt.Errorf("-stream races one strategy per window; it cannot be combined with -portfolio")
		}
		return runStream(ctx, cfg)
	}

	var r io.Reader
	name := cfg.path
	if cfg.path == "-" {
		r = os.Stdin
		name = "stdin"
	} else {
		f, err := os.Open(cfg.path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	var b *racetrack.Benchmark
	switch cfg.format {
	case "vars":
		var err error
		b, err = racetrack.ReadBenchmark(name, r)
		if err != nil {
			return err
		}
	case "addr":
		s, err := racetrack.ReadAddressTrace(r, cfg.wordBytes)
		if err != nil {
			return err
		}
		b = &racetrack.Benchmark{Name: name, Sequences: []*racetrack.Sequence{s}}
	case "bin":
		var err error
		b, err = racetrack.ReadBinaryBenchmark(name, r)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -format %q (want 'vars', 'addr' or 'bin')", cfg.format)
	}
	if len(b.Sequences) == 0 {
		return fmt.Errorf("no access sequences in %s", name)
	}

	workers := cfg.workers
	if workers < 1 {
		workers = 1
	}
	lab, err := racetrack.New(racetrack.WithWorkers(workers))
	if err != nil {
		return err
	}

	opts := cfg.placeOptions()

	// The placements per sequence, in input order, for the simulation
	// below — filled by either the single-strategy or the portfolio path.
	placements := make([]*racetrack.Placement, len(b.Sequences))
	var total int64
	if cfg.portfolio {
		fmt.Printf("%s: %d sequence(s), portfolio race, %d DBCs, %d port(s)/track\n",
			name, len(b.Sequences), cfg.dbcs, cfg.ports)
		for i, s := range b.Sequences {
			r, err := lab.PlacePortfolio(ctx, s, opts)
			if err != nil {
				return err
			}
			placements[i] = r.Placement
			total += r.Shifts
			pruned := 0
			for _, e := range r.Entries {
				if e.Abandoned {
					pruned++
				}
			}
			fmt.Printf("  seq %d: %d accesses, %d variables -> %d shifts (winner %s, %d/%d pruned)\n",
				i, s.Len(), len(s.Distinct()), r.Shifts, r.Winner, pruned, len(r.Entries))
			printCost("    ", r.Cost)
			if cfg.verbose {
				fmt.Printf("    %s\n", r.Placement.Render(s))
			}
		}
	} else {
		fmt.Printf("%s: %d sequence(s), strategy %s, %d DBCs, %d port(s)/track\n",
			name, len(b.Sequences), opts.Strategy, cfg.dbcs, cfg.ports)

		// Sequences are independent placement problems: the Lab fans them
		// out on the shared experiment engine and reports in input order.
		res, err := lab.PlaceBenchmark(ctx, b, opts)
		if err != nil {
			return err
		}
		for i, s := range b.Sequences {
			placements[i] = res.Results[i].Placement
			fmt.Printf("  seq %d: %d accesses, %d variables -> %d shifts\n",
				i, s.Len(), len(s.Distinct()), res.Results[i].Shifts)
			printCost("    ", res.Results[i].Cost)
			if cfg.verbose {
				fmt.Printf("    %s\n", res.Results[i].Placement.Render(s))
			}
		}
		total = res.TotalShifts
		printCost("", res.TotalCost)
	}
	fmt.Printf("total shifts: %d\n", total)

	// Energy/latency when a Table I configuration was selected. The
	// simulated device carries the same port count the placements were
	// optimized under, so the replayed shift counts match the reported
	// cost model.
	dev, err := racetrack.TableIDevice(cfg.dbcs)
	if err != nil {
		fmt.Printf("(no Table I energy model for %d DBCs; shift count only)\n", cfg.dbcs)
		return nil
	}
	if cfg.ports > 1 {
		dev.Geometry.PortsPerTrack = cfg.ports
		if err := dev.Geometry.Validate(); err != nil {
			return err
		}
	}
	var agg racetrack.SimResult
	for i, s := range b.Sequences {
		r, err := lab.SimulateOn(ctx, dev, s, placements[i])
		if err != nil {
			return err
		}
		agg.Add(r)
	}
	fmt.Printf("latency: %.1f ns   energy: %.1f pJ (leakage %.1f / read-write %.1f / shift %.1f)\n",
		agg.LatencyNS, agg.Energy.TotalPJ(),
		agg.Energy.LeakagePJ, agg.Energy.ReadWritePJ, agg.Energy.ShiftPJ)
	return nil
}

// printCost renders a priced cost line (no-op without -objective).
func printCost(indent string, c *racetrack.Cost) {
	if c == nil {
		return
	}
	fmt.Printf("%scost[%s]: scalar=%g runtime=%gns energy=%gpJ (dynamic=%g leakage=%g) fault_shifts=%g\n",
		indent, c.Objective, c.Scalar, c.RuntimeNS, c.TotalEnergyPJ(), c.DynamicPJ, c.LeakagePJ, c.FaultShifts)
}

// runStream is the out-of-core path: the binary trace is scanned
// sequence by sequence and each sequence is placed window by window
// through Lab.PlaceStream, so memory stays O(window) no matter how long
// the trace is. Shift cost only — the Table I simulation replays
// materialized placements, which a streamed run never holds.
func runStream(ctx context.Context, cfg runConfig) error {
	var br *racetrack.BinaryTraceReader
	name := cfg.path
	if cfg.path == "-" {
		name = "stdin"
		var err error
		br, err = racetrack.NewBinaryTraceReader(os.Stdin)
		if err != nil {
			return err
		}
	} else {
		bf, err := racetrack.OpenBinaryTrace(cfg.path)
		if err != nil {
			return err
		}
		defer bf.Close()
		br = bf.Reader()
	}

	lab, err := racetrack.New()
	if err != nil {
		return err
	}
	opts := cfg.placeOptions()
	window := opts.Window
	if window <= 0 {
		window = racetrack.StreamWindow
	}
	fmt.Printf("%s: %d sequence(s), strategy %s, %d DBCs, streaming (window %d)\n",
		name, br.SeqCount(), opts.Strategy, cfg.dbcs, window)

	var total int64
	for i := 0; ; i++ {
		sc, err := br.ScanSequence()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		res, err := lab.PlaceStream(ctx, sc.NumVars(), sc, opts)
		if err != nil {
			return err
		}
		fmt.Printf("  seq %d: %d accesses, %d variables -> %d shifts (%d windows, %d migration shifts, peak window %d vars)\n",
			i, res.Accesses, sc.NumVars(), res.Shifts, res.Windows, res.MigrationShifts, res.MaxWindowVars)
		printCost("    ", res.Cost)
		total += res.Shifts
	}
	fmt.Printf("total shifts: %d\n", total)
	return nil
}
