// Command rtmtrace converts, inspects and generates access traces in
// the compact binary format the out-of-core pipeline consumes
// (DESIGN.md §12).
//
// Usage:
//
//	rtmtrace convert -from vars -to bin -o trace.rtb trace.txt
//	rtmtrace convert -from bin -to vars trace.rtb
//	rtmtrace inspect trace.rtb
//	rtmtrace synth -vars 4096 -accesses 10000000 -seed 1 -o big.rtb
//	rtmtrace kernel big.rtb
//
// convert translates between the text formats ('vars' named-variable
// traces, 'addr' raw R/W address records) and the binary format; it
// materializes the trace, so it is for corpus-sized inputs, not
// out-of-core ones. synth streams a seeded synthetic trace straight
// into the binary encoder in constant memory — this is how the
// 10⁷–10⁸-access CI workloads are produced without ever holding them.
// inspect scans a binary trace without loading it, verifying every
// sequence's fingerprint trailer. kernel builds the streaming cost
// kernel over each sequence — the out-of-core analysis step, with a
// working set proportional to distinct variables, not trace length —
// and reports the kernel's shape.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	racetrack "repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "synth":
		err = cmdSynth(os.Args[2:])
	case "kernel":
		err = cmdKernel(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "rtmtrace: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtmtrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rtmtrace convert [-from vars|addr|bin] [-to bin|vars] [-word-bytes n] [-o out] <in|->
  rtmtrace inspect <trace.rtb|->
  rtmtrace synth -vars n -accesses n [-seed n] [-zipf s] [-write-fraction f] [-o out]
  rtmtrace kernel <trace.rtb|->`)
}

// openIn opens the input argument ("-" is stdin).
func openIn(path string) (io.Reader, string, func(), error) {
	if path == "-" {
		return os.Stdin, "stdin", func() {}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", nil, err
	}
	return f, path, func() { f.Close() }, nil
}

// createOut creates the output target ("-" is stdout). The returned
// closer reports flush/close errors, which matter for writers.
func createOut(path string) (io.Writer, func() error, error) {
	if path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	from := fs.String("from", "vars", "input format: 'vars', 'addr' or 'bin'")
	to := fs.String("to", "bin", "output format: 'bin' or 'vars'")
	wordBytes := fs.Int("word-bytes", 4, "word granularity for -from addr")
	out := fs.String("o", "-", "output file ('-' = stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("convert wants exactly one input file (or '-')")
	}

	r, name, done, err := openIn(fs.Arg(0))
	if err != nil {
		return err
	}
	defer done()

	var b *racetrack.Benchmark
	switch *from {
	case "vars":
		b, err = racetrack.ReadBenchmark(name, r)
	case "addr":
		var s *racetrack.Sequence
		s, err = racetrack.ReadAddressTrace(r, *wordBytes)
		if err == nil {
			b = &racetrack.Benchmark{Name: name, Sequences: []*racetrack.Sequence{s}}
		}
	case "bin":
		b, err = racetrack.ReadBinaryBenchmark(name, r)
	default:
		return fmt.Errorf("unknown -from %q (want 'vars', 'addr' or 'bin')", *from)
	}
	if err != nil {
		return err
	}

	w, closeOut, err := createOut(*out)
	if err != nil {
		return err
	}
	switch *to {
	case "bin":
		err = racetrack.WriteBinaryBenchmark(w, b)
	case "vars":
		err = racetrack.WriteBenchmark(w, b)
	default:
		err = fmt.Errorf("unknown -to %q (want 'bin' or 'vars')", *to)
	}
	if cerr := closeOut(); err == nil {
		err = cerr
	}
	return err
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("inspect wants exactly one binary trace file (or '-')")
	}

	var (
		br      *racetrack.BinaryTraceReader
		name    = fs.Arg(0)
		backend = "buffered"
	)
	if name == "-" {
		name = "stdin"
		var err error
		br, err = racetrack.NewBinaryTraceReader(os.Stdin)
		if err != nil {
			return err
		}
	} else {
		bf, err := racetrack.OpenBinaryTrace(name)
		if err != nil {
			return err
		}
		defer bf.Close()
		if bf.Mapped() {
			backend = "mmap"
		}
		br = bf.Reader()
	}

	fmt.Printf("%s: binary trace, %d sequence(s), %s backend\n", name, br.SeqCount(), backend)
	var total int64
	for i := 0; ; i++ {
		sc, err := br.ScanSequence()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		// Drain the stream (which verifies the fingerprint trailer),
		// tallying what the header alone cannot state.
		var writes, touched int64
		var seen []bool
		if nv := sc.NumVars(); nv <= 1<<26 { // skip the tally on implausible universes
			seen = make([]bool, nv)
		}
		for {
			a, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			if a.Write {
				writes++
			}
			if seen != nil && !seen[a.Var] {
				seen[a.Var] = true
				touched++
			}
		}
		named := "unnamed"
		if sc.Names() != nil {
			named = "named"
		}
		fmt.Printf("  seq %d: %d accesses, %d variables (%s, %d touched), %d writes, fingerprint %#016x\n",
			i, sc.Len(), sc.NumVars(), named, touched, writes, sc.Fingerprint())
		total += sc.Len()
	}
	fmt.Printf("total: %d accesses, all fingerprints verified\n", total)
	return nil
}

func cmdSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	vars := fs.Int("vars", 0, "variable universe size (required)")
	accesses := fs.Int64("accesses", 0, "stream length (required)")
	seed := fs.Int64("seed", 1, "PRNG seed; equal configs generate bit-identical traces")
	zipf := fs.Float64("zipf", 0, "Zipf skew of variable popularity (0 = default)")
	writeFrac := fs.Float64("write-fraction", 0, "store probability per access (0 = default)")
	loopMin := fs.Int("loop-min", 0, "minimum loop-body length in distinct variables (0 = default)")
	loopMax := fs.Int("loop-max", 0, "maximum loop-body length in distinct variables (0 = default)")
	repMin := fs.Int("rep-min", 0, "minimum iterations per loop (0 = default)")
	repMax := fs.Int("rep-max", 0, "maximum iterations per loop (0 = default)")
	scatter := fs.Int("scatter", 0, "scattered single accesses between loops (0 = default)")
	out := fs.String("o", "-", "output file ('-' = stdout)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("synth takes no positional arguments")
	}

	cfg := racetrack.SynthConfig{
		Vars: *vars, Accesses: *accesses, Seed: *seed,
		ZipfS: *zipf, WriteFraction: *writeFrac,
		LoopMin: *loopMin, LoopMax: *loopMax,
		RepMin: *repMin, RepMax: *repMax,
		ScatterLen: *scatter,
	}
	gen, err := racetrack.NewSynthReader(cfg)
	if err != nil {
		return err
	}

	w, closeOut, err := createOut(*out)
	if err != nil {
		return err
	}
	// Generator straight into the streaming encoder: the counts are known
	// up front, so the whole trace flows through in constant memory.
	bw, err := racetrack.NewBinaryTraceWriter(w, 1)
	if err != nil {
		return err
	}
	if err := bw.BeginSequence(cfg.Vars, cfg.Accesses, nil); err != nil {
		return err
	}
	for {
		a, err := gen.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := bw.Append(a); err != nil {
			return err
		}
	}
	if err := bw.EndSequence(); err != nil {
		return err
	}
	if err := bw.Close(); err != nil {
		return err
	}
	if err := closeOut(); err != nil {
		return err
	}
	if *out != "-" {
		fmt.Printf("%s: %d accesses over %d variables (seed %d)\n", *out, cfg.Accesses, cfg.Vars, *seed)
	}
	return nil
}

func cmdKernel(args []string) error {
	fs := flag.NewFlagSet("kernel", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("kernel wants exactly one binary trace file (or '-')")
	}

	var (
		br   *racetrack.BinaryTraceReader
		name = fs.Arg(0)
	)
	if name == "-" {
		name = "stdin"
		var err error
		br, err = racetrack.NewBinaryTraceReader(os.Stdin)
		if err != nil {
			return err
		}
	} else {
		bf, err := racetrack.OpenBinaryTrace(name)
		if err != nil {
			return err
		}
		defer bf.Close()
		br = bf.Reader()
	}

	fmt.Printf("%s: streaming kernel build, %d sequence(s)\n", name, br.SeqCount())
	for i := 0; ; i++ {
		sc, err := br.ScanSequence()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		k, err := racetrack.NewStreamCostKernel(sc.NumVars(), sc)
		if err != nil {
			return err
		}
		fmt.Printf("  seq %d: %d accesses, %d variables -> kernel %d nnz, %d candidate slots\n",
			i, k.Accesses(), k.NumVars(), k.NNZ(), k.Candidates())
	}
	return nil
}
