// Package racetrack is the public API of this repository: a Go
// implementation of "Generalized Data Placement Strategies for Racetrack
// Memories" (Khan, Goens, Hameed, Castrillon — DATE 2020).
//
// Racetrack memories (RTM) store data in magnetic nanotracks grouped into
// domain block clusters (DBCs); accessing a word requires shifting its
// track under an access port, and shifts dominate RTM latency and energy.
// Given a program's memory-access trace, this package computes placements
// of the program's variables across and within DBCs that minimize the
// total shift count, reproducing the paper's heuristics (DMA), baselines
// (AFD, OFU, Chen, ShiftsReduce, random walk), genetic algorithm, and
// evaluation pipeline (Table I device model, shift/latency/energy
// simulation).
//
// # Quick start
//
// The session object is a Lab: an instance-scoped strategy registry, a
// default device, a worker pool, a content-addressed cost-kernel cache
// and context-first methods.
//
//	lab, err := racetrack.New(
//		racetrack.WithDevice(4),
//		racetrack.WithWorkers(8),
//	)
//	...
//	seq, err := racetrack.ParseSequence("a b a b c a c a d d a")
//	...
//	res, err := lab.Place(ctx, seq, racetrack.PlaceOptions{
//		Strategy: racetrack.DMAOFU,
//	})
//	fmt.Println(res.Shifts, res.Placement)
//
// Labs also run the paper's experiment pipeline (Lab.Run with a typed
// ExperimentSpec), simulate placements on Table I devices (Lab.Simulate,
// Lab.SimulateBenchmark) and accept custom strategies scoped to the
// instance (WithStrategy, Lab.RegisterStrategy) — two Labs can register
// different strategies under the same name and run concurrently.
//
// The flat package-level functions (PlaceTrace, PlaceBenchmark,
// Simulate, ...) remain as thin wrappers over a lazily initialized
// default Lab whose registry is process-wide, exactly as before the
// session API existed.
//
// The subpackages under internal/ hold the implementation: trace analysis
// (internal/trace), the RTM device model (internal/rtm), the Table I
// energy model (internal/energy), the placement algorithms
// (internal/placement), the synthetic OffsetStone workloads
// (internal/offsetstone), the trace-driven simulator (internal/sim) and
// the per-figure experiment harness (internal/eval).
package racetrack

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/cache"
	"repro/internal/energy"
	"repro/internal/frontend"
	"repro/internal/offsetstone"
	"repro/internal/placement"
	"repro/internal/rtm"
	"repro/internal/rtmsim"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Strategy selects a placement algorithm. The six values mirror the
// paper's evaluation (section IV-A).
type Strategy = placement.StrategyID

// The available placement strategies.
const (
	// AFDOFU is the state-of-the-art baseline (Chen et al.).
	AFDOFU = placement.StrategyAFDOFU
	// DMAOFU is the paper's disjoint-memory-accesses heuristic.
	DMAOFU = placement.StrategyDMAOFU
	// DMAChen pairs DMA with Chen's intra-DBC heuristic.
	DMAChen = placement.StrategyDMAChen
	// DMASR pairs DMA with the ShiftsReduce intra-DBC heuristic.
	DMASR = placement.StrategyDMASR
	// GA is the paper's genetic algorithm (near-optimal, slow).
	GA = placement.StrategyGA
	// RW is the random-walk search baseline.
	RW = placement.StrategyRW
)

// Strategies lists the six paper strategies in the paper's order.
func Strategies() []Strategy { return placement.AllStrategies() }

// RegisteredStrategies lists every strategy resolvable by name in the
// default Lab: the six paper strategies first, then plugged-in
// strategies (including the built-in "DMA-2opt" and "GA-2opt"
// extensions). It returns nil if the default session failed to
// construct (an unseedable process registry — see RegisterStrategy for
// the error).
func RegisteredStrategies() []Strategy {
	l, err := defaultLab()
	if err != nil {
		return nil
	}
	return l.RegisteredStrategies()
}

// StrategyOptions carries the per-strategy tuning knobs (capacity, GA/RW
// parameters) passed to every strategy, including custom ones.
type StrategyOptions = placement.Options

// GAConfig tunes the paper's genetic algorithm (µ, λ, generations,
// tournament size, mutation operators, seed).
type GAConfig = placement.GAConfig

// DefaultGAConfig returns the paper's published GA parameters (µ = λ =
// 100, 200 generations, tournament 4).
func DefaultGAConfig() GAConfig { return placement.DefaultGAConfig() }

// RWConfig tunes the random-walk baseline (iterations, seed).
type RWConfig = placement.RWConfig

// DefaultRWConfig returns the paper's random-walk budget (60 000
// iterations).
func DefaultRWConfig() RWConfig { return placement.DefaultRWConfig() }

// RegisterStrategy plugs a custom placement strategy into the
// process-wide registry (the default Lab's registry) under the given
// name. Once registered, the strategy is resolvable everywhere a
// Strategy name is accepted: PlaceTrace, PlaceBenchmark,
// SimulateBenchmark, the experiment drivers and the CLI tools — but not
// in Labs built with New, which carry their own instance registries
// (use WithStrategy or Lab.RegisterStrategy there). fn must be safe for
// concurrent use (the experiment engine calls it from multiple workers)
// and deterministic for a fixed input if reproducible experiments are
// desired. Registration fails on an empty or already-taken name.
func RegisterStrategy(name string, fn func(s *Sequence, q int, opts StrategyOptions) (*Placement, int64, error)) error {
	l, err := defaultLab()
	if err != nil {
		return err
	}
	return l.RegisterStrategy(name, fn)
}

// DMA2Opt is the two-opt-refined DMA strategy (DMA inter-DBC placement,
// ShiftsReduce + 2-opt local search on the non-disjoint DBCs). It is not
// part of the paper's evaluation; like GA2Opt it is seeded into every
// Lab's registry alongside the paper strategies, so it is resolvable by
// name everywhere. It never costs more shifts than DMASR.
const DMA2Opt Strategy = placement.StrategyDMATwoOpt

// GA2Opt is the memetic GA extension strategy: the paper's GA with a
// delta-evaluated 2-opt local-improvement mutation mixed into breeding.
const GA2Opt Strategy = placement.StrategyGAMemetic

// Sequence is an access sequence over named program variables.
type Sequence = trace.Sequence

// Benchmark is a named set of access sequences (one placement problem per
// sequence, as in the offset-assignment literature).
type Benchmark = trace.Benchmark

// Placement assigns variables to (DBC, offset) locations.
type Placement = placement.Placement

// ParseSequence parses a whitespace-separated access sequence; each token
// is a variable name, with a "!" suffix marking writes: "a b! a c".
func ParseSequence(text string) (*Sequence, error) {
	tokens := strings.Fields(text)
	if len(tokens) == 0 {
		return nil, fmt.Errorf("racetrack: empty access sequence")
	}
	return trace.NewNamedSequence(tokens...)
}

// ParseBenchmark parses the multi-sequence text format (see
// internal/trace): "seq <name>" directives separate sequences.
func ParseBenchmark(name, text string) (*Benchmark, error) {
	return trace.ParseString(name, text)
}

// ReadBenchmark reads the multi-sequence text format from a stream (the
// streaming form of ParseBenchmark; this is what the CLI tools consume).
func ReadBenchmark(name string, r io.Reader) (*Benchmark, error) {
	return trace.Parse(name, r)
}

// WriteBenchmark writes the benchmark in the multi-sequence text format
// ReadBenchmark reads — the inverse conversion, used e.g. by rtmtrace to
// turn a binary trace back into something greppable.
func WriteBenchmark(w io.Writer, b *Benchmark) error {
	return trace.Write(w, b)
}

// ReadAddressTrace reads a raw R/W address trace ("R 0x100" records, one
// per line; see internal/trace) into a single access sequence at the
// given word granularity in bytes.
func ReadAddressTrace(r io.Reader, wordBytes int) (*Sequence, error) {
	return trace.ParseAddressTrace(r, wordBytes)
}

// PlaceOptions configures PlaceTrace.
type PlaceOptions struct {
	// Strategy selects the algorithm; default DMAOFU.
	Strategy Strategy
	// DBCs is the number of domain block clusters (q); default 4.
	DBCs int
	// Capacity is the optional per-DBC word capacity (0 = unlimited).
	Capacity int
	// GA overrides the genetic-algorithm parameters (zero value: the
	// paper's µ=λ=100, 200 generations, tournament 4).
	GA GAConfig
	// RW overrides the random-walk parameters (zero value: the paper's
	// 60 000 iterations).
	RW RWConfig
	// Workers sizes the worker pool PlaceBenchmark fans sequences out on
	// (0 or 1 = sequential). Results are deterministic regardless.
	Workers int
	// Ports selects the access-port count of the cost model placements
	// are optimized and scored under. 0 follows the Lab's device (one
	// port unless WithPorts raised it); 1 forces the paper's
	// single-port |x−y| model; larger values price and search under the
	// exact multi-port nearest-port model, matching what Simulate
	// replays on a PortsPerTrack > 1 device.
	Ports int
	// Portfolio lists the strategies Lab.PlacePortfolio races, in
	// deterministic tie-break order. Empty means every strategy of the
	// Lab's registry. Ignored by the single-strategy methods.
	Portfolio []Strategy
	// Window is the accesses-per-window granularity of Lab.PlaceStream
	// (0 selects the default window; see StreamWindow). Ignored by the
	// in-RAM methods.
	Window int
	// Objective selects the cost objective the result is priced under:
	// "shifts", "energy", "runtime" or "faulty:<rate>" (ParseObjective).
	// The Table I parameters come from the effective DBC count, so a
	// derived objective with a non-Table-I DBCs value is an error. Empty
	// falls back to the Lab's WithCostModel model, and then to the raw
	// shift default, which skips pricing entirely (Cost stays nil).
	// Placements and shift counts are bit-identical across objectives —
	// every objective is strictly monotone in shifts — so this only
	// controls the priced Cost fields of the result.
	Objective string
}

// options lowers PlaceOptions to the per-strategy knobs. The port
// layout derives from the iso-capacity device rule for the DBC count
// being placed — the same track length the Lab's Table I device has.
func (o PlaceOptions) options() StrategyOptions {
	return StrategyOptions{Capacity: o.Capacity, GA: o.GA, RW: o.RW, Ports: o.Ports}
}

// PortfolioEntry is one strategy's outcome in a finished portfolio race
// (see Lab.PlacePortfolio).
type PortfolioEntry = placement.PortfolioEntry

// PlaceResult is the outcome of a placement run.
type PlaceResult struct {
	// Placement is the computed layout.
	Placement *Placement
	// Shifts is its total shift cost under the paper's cost model.
	Shifts int64
	// PerDBC attributes shifts to DBCs.
	PerDBC []int64
	// Cost prices the result under the call's effective cost model
	// (PlaceOptions.Objective, else WithCostModel); nil under the raw
	// shift default.
	Cost *Cost
	// PerDBCCost prices each DBC's share of the tally, aligned with
	// PerDBC. nil whenever Cost is.
	PerDBCCost []Cost
}

// PlaceTrace computes a placement for one access sequence. It is a
// compat wrapper over the default Lab's Place (repeated calls on the
// same trace content therefore hit the Lab's kernel cache).
func PlaceTrace(s *Sequence, opts PlaceOptions) (*PlaceResult, error) {
	l, err := defaultLab()
	if err != nil {
		return nil, err
	}
	//rtmlint:ctxcheck-ok legacy compat wrapper is the public surface; no caller context exists
	return l.Place(context.Background(), s, opts)
}

// BenchmarkPlaceResult is the outcome of placing every sequence of a
// benchmark: one PlaceResult per sequence, in benchmark order, plus the
// total shift count.
type BenchmarkPlaceResult struct {
	Benchmark *Benchmark
	Results   []*PlaceResult
	// TotalShifts sums the per-sequence shift costs (each sequence is an
	// independent placement problem).
	TotalShifts int64
	// TotalCost accumulates the per-sequence priced costs under the
	// call's effective cost model; nil under the raw shift default.
	TotalCost *Cost
}

// PlaceBenchmark places every sequence of the benchmark with the selected
// strategy, fanning the sequences out on the shared experiment engine
// when opts.Workers > 1. The results are identical for any worker count.
// It is a compat wrapper over the default Lab's PlaceBenchmark.
func PlaceBenchmark(b *Benchmark, opts PlaceOptions) (*BenchmarkPlaceResult, error) {
	l, err := defaultLab()
	if err != nil {
		return nil, err
	}
	//rtmlint:ctxcheck-ok legacy compat wrapper is the public surface; no caller context exists
	return l.PlaceBenchmark(context.Background(), b, opts)
}

// DeviceConfig describes a simulated RTM device.
type DeviceConfig = sim.Config

// TableIDevice returns the paper's iso-capacity 4 KiB device for a DBC
// count of 2, 4, 8 or 16, including its Table I timing/energy parameters.
func TableIDevice(dbcs int) (DeviceConfig, error) { return sim.TableIConfig(dbcs) }

// TableIDBCCounts lists the DBC counts of Table I.
func TableIDBCCounts() []int { return rtm.TableIDBCCounts() }

// SimResult is the outcome of simulating a trace on a device.
type SimResult = sim.Result

// Simulate replays the sequence with the placement on the device and
// returns shift/read/write counts, latency and the energy breakdown. It
// is a compat wrapper over the default Lab's SimulateOn.
func Simulate(dev DeviceConfig, s *Sequence, p *Placement) (SimResult, error) {
	l, err := defaultLab()
	if err != nil {
		return SimResult{}, err
	}
	//rtmlint:ctxcheck-ok legacy compat wrapper is the public surface; no caller context exists
	return l.SimulateOn(context.Background(), dev, s, p)
}

// SimulateBenchmark places (with the given strategy, defaulting to
// DMA-OFU like PlaceTrace) and replays every sequence of a benchmark,
// accumulating totals. It is a compat wrapper over the default Lab's
// SimulateBenchmarkOn, so the cells fan out on the experiment engine
// and opts.Workers is honored (totals are bit-identical for any worker
// count).
func SimulateBenchmark(dev DeviceConfig, b *Benchmark, strategy Strategy, opts PlaceOptions) (SimResult, error) {
	opts.Strategy = strategy
	l, err := defaultLab()
	if err != nil {
		return SimResult{}, err
	}
	//rtmlint:ctxcheck-ok legacy compat wrapper is the public surface; no caller context exists
	return l.SimulateBenchmarkOn(context.Background(), dev, b, opts)
}

// EnergyParams exposes the Table I row for a DBC count.
func EnergyParams(dbcs int) (energy.Params, error) { return energy.ForDBCs(dbcs) }

// An Objective names the cost dimension placements are priced — and
// searched — under: raw shifts (the paper's primitive and the default),
// total energy, serialized runtime, or expected runtime under the
// FaultyEngine error model. Every objective is strictly monotone in the
// shift count for a fixed configuration, so the optimizers keep their
// exact shift-minimizing trajectories regardless of the objective; only
// the priced Cost reported alongside results changes (DESIGN.md §15).
type Objective = placement.Objective

// The supported objectives.
const (
	// ObjectiveShifts is the raw shift count (the default).
	ObjectiveShifts = placement.ObjectiveShifts
	// ObjectiveEnergy is total (dynamic + leakage) energy in pJ.
	ObjectiveEnergy = placement.ObjectiveEnergy
	// ObjectiveRuntime is serialized-access runtime in ns.
	ObjectiveRuntime = placement.ObjectiveRuntime
	// ObjectiveFaulty is expected runtime under a per-shift slip rate;
	// spelled "faulty:<rate>" in specs.
	ObjectiveFaulty = placement.ObjectiveFaulty
)

// ParseObjective parses an objective spec — "shifts", "energy",
// "runtime" or "faulty:<rate>" with rate in [0,1) — as accepted by
// PlaceOptions.Objective, the CLIs and the placement service. The empty
// string parses as ObjectiveShifts; the returned rate is nonzero only
// for faulty specs.
func ParseObjective(spec string) (Objective, float64, error) {
	return placement.ParseObjective(spec)
}

// A Tally is the event totals a Cost is priced from: the placement's
// shift count plus the trace's (placement-independent) read and write
// counts.
type Tally = placement.Tally

// TallyOf builds the pricing tally for a placement of s that costs the
// given shift count: the read/write totals come from the sequence, the
// shift count from the placement.
func TallyOf(s *Sequence, shifts int64) Tally { return placement.TallyOf(s, shifts) }

// A Cost is a placement's tally priced into every cost dimension at
// once: shift/read/write counts, expected fault-correction shifts,
// runtime, dynamic and leakage energy, and the scalar the objective
// selects.
type Cost = placement.Cost

// A CostModel prices shift/read/write tallies under one objective and
// one Table I parameter set. Models are immutable and safe for
// concurrent use; construct with NewCostModel (or install one Lab-wide
// with WithCostModel).
type CostModel = placement.CostModel

// NewCostModel builds a pricing model from an objective, a Table I
// parameter set (see EnergyParams; a zero value is accepted only for
// ObjectiveShifts) and a FaultyEngine per-shift slip rate in [0,1).
// Construction fails unless the objective's scalar is strictly
// increasing in the shift count — the invariant that lets the search
// layers optimize raw shifts on the model's behalf.
func NewCostModel(objective Objective, params energy.Params, faultRate float64) (*CostModel, error) {
	return placement.NewCostModel(objective, params, faultRate)
}

// DefaultCostModel returns the raw-shift model: the zero-overhead
// default that prices exactly what the paper's evaluation counts.
func DefaultCostModel() *CostModel { return placement.DefaultCostModel() }

// ShiftCost evaluates a placement's shift cost without simulation by
// replaying the access stream — the repository's cost oracle. Callers
// that price many placements of one sequence should build a CostKernel
// once instead.
func ShiftCost(s *Sequence, p *Placement) (int64, error) { return placement.ShiftCost(s, p) }

// CostKernel is the O(nnz) full-cost evaluator: a one-pass summary of a
// sequence from which the exact shift cost of any placement is computed
// without replaying the access stream (bit-identical to ShiftCost; see
// DESIGN.md §8). Build one per sequence and share it freely — it is
// immutable and safe for concurrent use. Custom strategies receive a
// batch-shared kernel through StrategyOptions.Kernel when invoked via
// the experiment engine.
type CostKernel = placement.CostKernel

// NewCostKernel summarizes the sequence into a cost kernel.
func NewCostKernel(s *Sequence) *CostKernel { return placement.NewCostKernel(s) }

// BenchmarkNames lists the synthetic OffsetStone workloads bundled with
// the library (the 31 applications named in the paper's Fig. 4).
func BenchmarkNames() []string { return offsetstone.Names() }

// GenerateBenchmark deterministically generates the named synthetic
// OffsetStone workload (see internal/offsetstone for the trace model).
func GenerateBenchmark(name string) (*Benchmark, error) { return offsetstone.Generate(name) }

// CompileTrace compiles a program in the miniature frontend language
// (assignments over scalar locals, bounded loops, one "func" block per
// access sequence — see internal/frontend) into a benchmark. This is how
// offset-assignment traces arise in a real compiler flow.
func CompileTrace(name, source string) (*Benchmark, error) {
	return frontend.Compile(name, source)
}

// CycleSimulator is the cycle-accurate RTSim-style device model with
// banked queues and per-DBC shift state machines (see internal/rtmsim).
type CycleSimulator = rtmsim.Simulator

// CycleStats reports a cycle-accurate run.
type CycleStats = rtmsim.Stats

// NewCycleSimulator builds a cycle-accurate simulator for a Table I
// configuration at the given controller clock.
func NewCycleSimulator(dbcs int, clockGHz float64) (*CycleSimulator, error) {
	g, err := rtm.TableIGeometry(dbcs)
	if err != nil {
		return nil, err
	}
	p, err := energy.ForDBCs(dbcs)
	if err != nil {
		return nil, err
	}
	return rtmsim.New(g, p, clockGHz, rtmsim.InterleaveDomain)
}

// NewBankedCycleSimulator is NewCycleSimulator with the iso-capacity DBCs
// spread over `banks` independent banks (dbcs must divide evenly), so
// open-loop request streams can overlap shifting across banks.
func NewBankedCycleSimulator(dbcs, banks int, clockGHz float64) (*CycleSimulator, error) {
	g, err := rtm.TableIGeometry(dbcs)
	if err != nil {
		return nil, err
	}
	if banks <= 0 || dbcs%banks != 0 {
		return nil, fmt.Errorf("racetrack: %d banks must evenly divide %d DBCs", banks, dbcs)
	}
	g.Banks = banks
	g.DBCsPerSubarray = dbcs / banks
	p, err := energy.ForDBCs(dbcs)
	if err != nil {
		return nil, err
	}
	return rtmsim.New(g, p, clockGHz, rtmsim.InterleaveDomain)
}

// SimulateCycles replays the sequence with the placement on the
// cycle-accurate model. serialized selects the closed-loop CPU model
// (program-order dependencies); open-loop exposes bank parallelism.
func SimulateCycles(cs *CycleSimulator, s *Sequence, p *Placement, serialized bool) (CycleStats, error) {
	return rtmsim.RunPlacement(cs, s, p, serialized)
}

// RTMCache is a set-associative cache with an RTM data array (TapeCache
// lineage; see internal/cache): one set per DBC, one way per domain, so
// hits pay shift costs too.
type RTMCache = cache.Cache

// RTMCacheConfig configures an RTMCache.
type RTMCacheConfig = cache.Config

// Cache insertion policies.
const (
	// CacheInsertLRU is classic least-recently-used replacement.
	CacheInsertLRU = cache.InsertLRU
	// CacheInsertNearPort victimizes the cheapest-to-align way among the
	// colder half — the shift-aware policy.
	CacheInsertNearPort = cache.InsertNearPort
)

// NewRTMCache builds an RTM-backed cache.
func NewRTMCache(cfg RTMCacheConfig) (*RTMCache, error) { return cache.New(cfg) }
