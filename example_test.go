package racetrack_test

import (
	"fmt"
	"log"

	racetrack "repro"
)

// The paper's Fig. 3 example: parse the access sequence, place it with
// the sequence-aware heuristic and report the shift cost.
func ExamplePlaceTrace() {
	seq, err := racetrack.ParseSequence(
		"a b a b c a c a d d a i e f e f g e g h g i h i")
	if err != nil {
		log.Fatal(err)
	}
	res, err := racetrack.PlaceTrace(seq, racetrack.PlaceOptions{
		Strategy: racetrack.DMAOFU,
		DBCs:     2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d shifts\n%s\n", res.Shifts, res.Placement.Render(seq))
	// Output:
	// 9 shifts
	// DBC0:[b c d e h] | DBC1:[a i f g]
}

// Evaluate a hand-built layout: the AFD placement of the paper's Fig. 3-(c)
// costs 39 shifts.
func ExampleShiftCost() {
	seq, err := racetrack.ParseSequence(
		"a b a b c a c a d d a i e f e f g e g h g i h i")
	if err != nil {
		log.Fatal(err)
	}
	// Variable ids follow first appearance: a=0 b=1 c=2 d=3 i=4 e=5 f=6 g=7 h=8.
	p := &racetrack.Placement{DBC: [][]int{
		{0, 7, 1, 3, 8}, // a g b d h
		{5, 4, 2, 6},    // e i c f
	}}
	cost, err := racetrack.ShiftCost(seq, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cost)
	// Output:
	// 39
}

// Simulate a placement on the paper's 4-DBC Table I device.
func ExampleSimulate() {
	seq, err := racetrack.ParseSequence("x y! x y x z")
	if err != nil {
		log.Fatal(err)
	}
	res, err := racetrack.PlaceTrace(seq, racetrack.PlaceOptions{
		Strategy: racetrack.DMASR, DBCs: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	dev, err := racetrack.TableIDevice(4)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := racetrack.Simulate(dev, seq, res.Placement)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reads=%d writes=%d shifts=%d\n",
		sim.Counts.Reads, sim.Counts.Writes, sim.Counts.Shifts)
	// Output:
	// reads=5 writes=1 shifts=1
}

// Compile a tiny program to an access trace with the bundled frontend.
func ExampleCompileTrace() {
	bench, err := racetrack.CompileTrace("demo", `
func f
  loop 2
    acc = acc + x
  end
end
`)
	if err != nil {
		log.Fatal(err)
	}
	seq := bench.Sequences[0]
	fmt.Println(seq.Len(), "accesses over", seq.NumVars(), "locals")
	// Output:
	// 6 accesses over 2 locals
}
