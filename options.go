package racetrack

import (
	"fmt"

	"repro/internal/placement"
	"repro/internal/sim"
)

// An Option configures a Lab under construction (see New). Options are
// applied in order; errors (an invalid device DBC count, a duplicate
// strategy name) are collected and reported joined by New rather than
// panicking — registration failures are construction errors, not
// process-fatal events.
type Option func(*labConfig)

// labConfig accumulates the option settings New assembles a Lab from.
type labConfig struct {
	workers    int
	dbcs       int
	ports      int
	islands    int
	device     sim.Config
	deviceSet  bool
	kernelCap  int
	cost       *placement.CostModel
	progress   func(ProgressEvent)
	strategies []labStrategy
	errs       []error
}

// labStrategy is one WithStrategy registration, applied against the
// Lab's instance registry at construction.
type labStrategy struct {
	name string
	fn   func(s *Sequence, q int, opts StrategyOptions) (*Placement, int64, error)
}

// WithWorkers sets the Lab's default worker-pool size for benchmark and
// experiment fan-out (individual calls can still override it through
// PlaceOptions.Workers or ExperimentConfig.Parallel). Results are
// deterministic for any worker count; n < 1 is an error. New Labs
// default to runtime.NumCPU().
func WithWorkers(n int) Option {
	return func(c *labConfig) {
		if n < 1 {
			c.errs = append(c.errs, fmt.Errorf("racetrack: WithWorkers(%d): worker count must be >= 1", n))
			return
		}
		c.workers = n
	}
}

// WithStrategy registers a custom placement strategy in the Lab's
// instance registry under the given name, exactly like
// Lab.RegisterStrategy but at construction time. Two Labs can register
// different strategies under the same name without interfering — the
// registry is scoped to the instance, not the process. A duplicate name
// within one Lab (or an empty name/nil fn) surfaces as a New error.
func WithStrategy(name string, fn func(s *Sequence, q int, opts StrategyOptions) (*Placement, int64, error)) Option {
	return func(c *labConfig) {
		c.strategies = append(c.strategies, labStrategy{name: name, fn: fn})
	}
}

// WithDevice selects the Lab's default simulated device: the paper's
// iso-capacity 4 KiB Table I configuration with the given DBC count (2,
// 4, 8 or 16). It also becomes the default DBC count for placements
// (PlaceOptions.DBCs == 0). The default is the 4-DBC device.
func WithDevice(dbcs int) Option {
	return func(c *labConfig) {
		dev, err := sim.TableIConfig(dbcs)
		if err != nil {
			c.errs = append(c.errs, fmt.Errorf("racetrack: WithDevice: %w", err))
			return
		}
		c.device = dev
		c.deviceSet = true
		c.dbcs = dbcs
	}
}

// WithPorts sets the access-port count per track of the Lab's device
// (default 1, the paper's evaluation setting). With n > 1 every layer
// follows the device: placements are optimized and scored under the
// exact multi-port cost model (nearest port, evenly spread over the
// device's track length), experiments simulate the multi-port geometry,
// and Simulate replays it — the objective the optimizers see is the one
// the device realizes. n < 1 (or a port count exceeding the device's
// domains per track) is an error.
func WithPorts(n int) Option {
	return func(c *labConfig) {
		if n < 1 {
			c.errs = append(c.errs, fmt.Errorf("racetrack: WithPorts(%d): port count must be >= 1", n))
			return
		}
		c.ports = n
	}
}

// WithIslands sets the Lab's default island count for GA-based
// placements: every GA run of this Lab (Place, PlaceBenchmark, the
// experiment drivers) uses the island-model search with n islands
// exchanging elites over a ring, unless the call's GAConfig.Islands
// overrides it. The islands run concurrently on the call's worker
// budget; results are bit-identical for a fixed seed and island count
// regardless of workers. n == 1 selects the serial GA explicitly; n < 1
// is an error.
func WithIslands(n int) Option {
	return func(c *labConfig) {
		if n < 1 {
			c.errs = append(c.errs, fmt.Errorf("racetrack: WithIslands(%d): island count must be >= 1", n))
			return
		}
		c.islands = n
	}
}

// WithKernelCache bounds the Lab's content-addressed cost-kernel cache
// to n kernels (evicted least-recently-used). Repeated pricing of the
// same access sequence — same content, not necessarily the same
// *Sequence pointer — reuses the cached kernel, making repeated
// Place/PlaceBenchmark calls over a working set of traces measurably
// faster. n == 0 disables the cache; n < 0 is an error. The default
// capacity is 64.
func WithKernelCache(n int) Option {
	return func(c *labConfig) {
		if n < 0 {
			c.errs = append(c.errs, fmt.Errorf("racetrack: WithKernelCache(%d): capacity must be >= 0", n))
			return
		}
		c.kernelCap = n
	}
}

// WithCostModel installs the Lab's default cost model: every placement
// result of this Lab (Place, PlacePortfolio, PlaceBenchmark,
// PlaceStream) is priced under it unless the call's
// PlaceOptions.Objective overrides the objective. Pricing is a
// reporting add-on: placements, shift counts and search trajectories
// are bit-identical with or without a model, because every
// constructible objective is strictly monotone in the shift count. A
// nil model is an error (omit the option for the raw shift default).
func WithCostModel(m *CostModel) Option {
	return func(c *labConfig) {
		if m == nil {
			c.errs = append(c.errs, fmt.Errorf("racetrack: WithCostModel(nil): construct a model with NewCostModel"))
			return
		}
		c.cost = m
	}
}

// WithProgress installs a progress callback: the Lab reports every
// experiment cell (sequence × strategy × DBC count) as it starts and
// finishes, with the per-strategy shift cost on completion. The Lab
// serializes invocations, so fn needs no locking of its own; it runs on
// worker goroutines, so it should return quickly. fn must not call back
// into the Lab's placement or experiment methods — events are delivered
// under the Lab's serialization lock, so a reentrant Place/Run would
// deadlock (cancelling a context from fn, as the cancellation tests do,
// is fine).
func WithProgress(fn func(ProgressEvent)) Option {
	return func(c *labConfig) { c.progress = fn }
}

// register applies the WithStrategy registrations to the registry,
// returning one error per failed registration.
func (c *labConfig) register(reg *placement.Registry) []error {
	var errs []error
	for _, st := range c.strategies {
		if err := reg.Register(placement.NewStrategy(st.name, st.fn)); err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}
